// Package costmodel reproduces the analytic cost/performance model behind
// Fig. 1 of the paper (after Lomet, "Cost/performance in modern data
// stores", DaMoN'18): the dollar cost of serving a key-value workload at a
// given operation rate, with the data resident in main memory versus on an
// SSD, and the effect of reducing the I/O execution cost.
//
// The model prices two resources: capacity (DRAM versus flash $/GB —
// Fig. 1(a)) and execution (CPU seconds per operation, higher when a miss
// must perform an I/O — Fig. 1(b)). Lowering the I/O cost — what the
// batched interface does — rotates the SSD curve downward and moves the
// crossover where main memory starts to win (the dotted line in
// Fig. 1(c)).
package costmodel

import "errors"

// Params prices the resources.
type Params struct {
	DRAMPerGB  float64 // $ per GB of DRAM
	FlashPerGB float64 // $ per GB of flash
	// CPUDollarsPerSecond converts sustained CPU seconds/sec into $
	// (amortised server cost per core-second of capacity).
	CPUDollarsPerSecond float64
	// OpCPUSeconds is the in-memory execution cost of one operation.
	OpCPUSeconds float64
	// IOCPUSeconds is the additional execution cost when the operation
	// must perform an SSD I/O (the host I/O execution path).
	IOCPUSeconds float64
	// CacheFraction is the fraction of the dataset kept in DRAM in the
	// SSD configuration.
	CacheFraction float64
	// MissRate is the fraction of operations that perform an I/O in the
	// SSD configuration.
	MissRate float64
}

// DefaultParams returns plausible 2020-era prices (the shape, not the
// absolute values, is what Fig. 1 communicates).
func DefaultParams() Params {
	return Params{
		DRAMPerGB:           8.0,
		FlashPerGB:          0.25,
		CPUDollarsPerSecond: 2e-5,
		OpCPUSeconds:        2e-6,
		IOCPUSeconds:        18e-6,
		CacheFraction:       0.1,
		MissRate:            0.5,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.DRAMPerGB <= 0 || p.FlashPerGB <= 0 || p.CPUDollarsPerSecond <= 0 {
		return errors.New("costmodel: prices must be positive")
	}
	if p.OpCPUSeconds <= 0 || p.IOCPUSeconds < 0 {
		return errors.New("costmodel: op costs must be positive")
	}
	if p.CacheFraction < 0 || p.CacheFraction > 1 || p.MissRate < 0 || p.MissRate > 1 {
		return errors.New("costmodel: fractions must be in [0,1]")
	}
	return nil
}

// MemoryCost returns the $ cost of serving opsPerSec over datasetGB with
// the data entirely in DRAM: capacity at DRAM prices plus the compute
// provisioned for the in-memory execution path.
func (p Params) MemoryCost(datasetGB, opsPerSec float64) float64 {
	capacity := datasetGB * p.DRAMPerGB
	return capacity + opsPerSec*p.OpCPUSeconds*cpuDollarFactor(p)
}

// SSDCost returns the $ cost with the data on flash plus a DRAM cache,
// where a miss pays ioCPU. ioScale scales the I/O execution cost (1.0 =
// the conventional block path; <1 models the batched interface's cheaper
// I/O — the paper's dotted curve).
func (p Params) SSDCost(datasetGB, opsPerSec, ioScale float64) float64 {
	capacity := datasetGB*p.FlashPerGB + datasetGB*p.CacheFraction*p.DRAMPerGB
	perOp := p.OpCPUSeconds + p.MissRate*p.IOCPUSeconds*ioScale
	return capacity + opsPerSec*perOp*cpuDollarFactor(p)
}

// cpuDollarFactor converts CPU-seconds-per-second of sustained load into
// dollars of provisioned compute.
func cpuDollarFactor(p Params) float64 {
	// One fully-busy core-second per second costs CPUDollarsPerSecond
	// amortised per second; provisioned over a 3-year amortisation the
	// multiplier folds into CPUDollarsPerSecond. Treat it directly.
	return p.CPUDollarsPerSecond * 1e6
}

// Crossover returns the ops/sec at which the in-memory configuration
// becomes cheaper than the SSD configuration (with the given ioScale),
// found by bisection over [lo, hi]. ok is false if no crossover exists in
// the range.
func (p Params) Crossover(datasetGB, lo, hi, ioScale float64) (float64, bool) {
	f := func(ops float64) float64 {
		return p.SSDCost(datasetGB, ops, ioScale) - p.MemoryCost(datasetGB, ops)
	}
	flo, fhi := f(lo), f(hi)
	if flo > 0 || fhi < 0 {
		return 0, false
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

// Point is one sample of a cost/performance curve.
type Point struct {
	OpsPerSec float64
	CostUSD   float64
}

// Series produces the three Fig. 1(c) curves over a log-ish sweep of
// operation rates: main memory, SSD with the conventional I/O cost, and
// SSD with the I/O cost reduced by reduceFactor.
func (p Params) Series(datasetGB float64, rates []float64, reduceFactor float64) (mem, ssd, ssdReduced []Point) {
	for _, r := range rates {
		mem = append(mem, Point{OpsPerSec: r, CostUSD: p.MemoryCost(datasetGB, r)})
		ssd = append(ssd, Point{OpsPerSec: r, CostUSD: p.SSDCost(datasetGB, r, 1)})
		ssdReduced = append(ssdReduced, Point{OpsPerSec: r, CostUSD: p.SSDCost(datasetGB, r, 1/reduceFactor)})
	}
	return mem, ssd, ssdReduced
}
