package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRingBasicEmitDump(t *testing.T) {
	r := New(64)
	r.Emit(KBatchStart, 7, 3, 11, 2, 0)
	start := r.Now()
	time.Sleep(time.Millisecond)
	r.Span(KClaim, 7, 3, 11, start, 0, 0)
	d := r.Dump()
	if d.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", d.Dropped)
	}
	if len(d.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(d.Events))
	}
	e0, e1 := d.Events[0], d.Events[1]
	if e0.Kind != KBatchStart || e0.TraceID != 7 || e0.SID != 3 || e0.WSN != 11 || e0.Arg1 != 2 {
		t.Fatalf("event 0 = %+v", e0)
	}
	if e0.Dur != 0 {
		t.Fatalf("instant has dur %d", e0.Dur)
	}
	if e1.Kind != KClaim || e1.Dur <= 0 {
		t.Fatalf("span event = %+v, want positive dur", e1)
	}
	if e1.TS < e0.TS {
		t.Fatalf("span start %d before first instant %d", e1.TS, e0.TS)
	}
	if e0.Seq != 1 || e1.Seq != 2 {
		t.Fatalf("seqs = %d, %d", e0.Seq, e1.Seq)
	}
}

// TestRingWraparound overfills a 64-slot ring and checks the survivors
// are exactly the newest 64 in ascending order with payloads intact.
func TestRingWraparound(t *testing.T) {
	r := New(64)
	const total = 200
	for i := 1; i <= total; i++ {
		r.Emit(KRequest, uint64(i), uint64(i*2), uint64(i*3), int64(i), int64(-i))
	}
	d := r.Dump()
	if want := uint64(total - 64); d.Dropped != want {
		t.Fatalf("dropped = %d, want %d", d.Dropped, want)
	}
	if len(d.Events) != 64 {
		t.Fatalf("events = %d, want 64", len(d.Events))
	}
	for i, ev := range d.Events {
		seq := uint64(total - 64 + 1 + i)
		if ev.Seq != seq {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, seq)
		}
		if ev.TraceID != seq || ev.SID != seq*2 || ev.WSN != seq*3 ||
			ev.Arg1 != int64(seq) || ev.Arg2 != -int64(seq) {
			t.Fatalf("event %d payload mismatch: %+v", i, ev)
		}
	}
}

// TestRingDumpOrdering: dumps are deterministic and strictly ascending
// by Seq regardless of ring position.
func TestRingDumpOrdering(t *testing.T) {
	r := New(128)
	for i := 0; i < 300; i++ {
		r.Emit(KGC, 0, 0, 0, int64(i), 0)
	}
	d1 := r.Dump()
	d2 := r.Dump()
	if len(d1.Events) != len(d2.Events) || d1.Dropped != d2.Dropped {
		t.Fatalf("repeated dump differs: %d/%d vs %d/%d",
			len(d1.Events), d1.Dropped, len(d2.Events), d2.Dropped)
	}
	for i := range d1.Events {
		if d1.Events[i] != d2.Events[i] {
			t.Fatalf("event %d differs between dumps", i)
		}
		if i > 0 && d1.Events[i].Seq <= d1.Events[i-1].Seq {
			t.Fatalf("seq not ascending at %d: %d then %d",
				i, d1.Events[i-1].Seq, d1.Events[i].Seq)
		}
	}
}

// TestRingConcurrentHammer emits from many goroutines while dumping
// concurrently. Under -race this proves the slot protocol is data-race
// free; the payload invariant (traceID == sid == wsn == arg1 == -arg2
// per event) proves no dump ever returns a torn slot.
func TestRingConcurrentHammer(t *testing.T) {
	r := New(256)
	const writers = 8
	const perWriter = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := r.Dump()
			for _, ev := range d.Events {
				if ev.SID != ev.TraceID || ev.WSN != ev.TraceID ||
					ev.Arg1 != int64(ev.TraceID) || ev.Arg2 != -int64(ev.TraceID) {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := uint64(w*perWriter + i + 1)
				r.Emit(KFlashProgram, v, v, v, int64(v), -int64(v))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish first; then stop the dumper.
	for {
		if r.cursor.Load() >= writers*perWriter {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	d := r.Dump()
	if len(d.Events) != 256 {
		t.Fatalf("final dump = %d events, want full ring 256", len(d.Events))
	}
	if want := uint64(writers*perWriter - 256); d.Dropped != want {
		t.Fatalf("dropped = %d, want %d", d.Dropped, want)
	}
}

func TestDisabledAndNilRecorder(t *testing.T) {
	for _, r := range []*Recorder{nil, NewDisabled()} {
		if r.Enabled() {
			t.Fatal("disabled recorder reports enabled")
		}
		r.Emit(KGC, 1, 2, 3, 4, 5)
		r.Span(KClaim, 1, 2, 3, r.Now(), 0, 0)
		d := r.Dump()
		if len(d.Events) != 0 || d.Dropped != 0 {
			t.Fatalf("disabled dump = %+v", d)
		}
		if !r.Now().IsZero() {
			t.Fatal("disabled Now() must be zero")
		}
	}
	if id := (*Recorder)(nil).NewTraceID(); id != 0 {
		t.Fatalf("nil NewTraceID = %d", id)
	}
	r := New(64)
	if a, b := r.NewTraceID(), r.NewTraceID(); a == 0 || b == 0 || a == b {
		t.Fatalf("trace IDs not unique/nonzero: %d, %d", a, b)
	}
}

func TestNewRoundsSizeUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {8000, 8192},
	} {
		if got := New(tc.in).Size(); got != tc.want {
			t.Fatalf("New(%d).Size() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestChromeJSONValid(t *testing.T) {
	r := New(64)
	r.Emit(KBatchStart, 9, 4, 1, 2, 0)
	st := r.Now()
	time.Sleep(100 * time.Microsecond)
	r.Span(KProgramWait, 9, 4, 1, st, 0, 0)
	r.Emit(KGC, 0, 0, 0, 3, 17)

	var buf bytes.Buffer
	if err := ChromeJSON(&buf, r.Dump()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			TS   json.Number    `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]string{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = ev.Ph
	}
	if names["batch_start"] != "i" || names["program_wait"] != "X" || names["gc"] != "i" {
		t.Fatalf("event phases wrong: %v", names)
	}
	if doc.OtherData["dropped"] != "0" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}
	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := ChromeJSON(&buf2, r.Dump()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("ChromeJSON not deterministic for identical dump")
	}
}

func TestTimelineRender(t *testing.T) {
	r := New(64)
	r.Emit(KBatchStart, 5, 2, 1, 3, 0)
	r.Emit(KBatchEnd, 5, 2, 1, 0, 0)
	r.Emit(KCheckpoint, 0, 0, 0, 0, 0)
	var buf bytes.Buffer
	if err := Timeline(&buf, r.Dump()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace 5", "batch_start", "batch_end", "untraced", "checkpoint"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	var empty bytes.Buffer
	if err := Timeline(&empty, Dump{Dropped: 3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(empty.Bytes(), []byte("empty")) {
		t.Fatalf("empty timeline: %s", empty.String())
	}
}

func TestMicroString(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{
		{0, "0"}, {1000, "1"}, {1500, "1.5"}, {123, "0.123"},
		{1000000, "1000"}, {999, "0.999"}, {-2500, "-2.5"},
	} {
		if got := microString(tc.ns); got != tc.want {
			t.Fatalf("microString(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
