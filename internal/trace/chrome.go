package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ChromeJSON writes the dump as Chrome trace_event JSON (the
// {"traceEvents": [...]} object form) loadable by chrome://tracing and
// Perfetto. Spans become "X" complete events, instants become "i"
// events; timestamps and durations are microseconds with sub-µs
// precision kept as fractions. Events are grouped on one process with
// one thread row per session (SID), plus row 0 for background and
// media events, so every WriteBatch stage of one batch lines up on its
// session's row. The output is deterministic for a given dump: no maps
// are iterated and no clocks are read.
func ChromeJSON(w io.Writer, d Dump) error {
	var b strings.Builder
	b.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	for _, ev := range d.Events {
		if !first {
			b.WriteByte(',')
		}
		first = false
		writeChromeEvent(&b, ev)
	}
	// Name the thread rows: one per SID seen, row 0 = background.
	sids := map[uint64]bool{}
	for _, ev := range d.Events {
		sids[ev.SID] = true
	}
	ordered := make([]uint64, 0, len(sids))
	for sid := range sids {
		ordered = append(ordered, sid)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, sid := range ordered {
		name := "background"
		if sid != 0 {
			name = fmt.Sprintf("session %d", sid)
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, `{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, sid, name)
	}
	b.WriteString(`],"otherData":{"epochUnixNano":"`)
	b.WriteString(strconv.FormatInt(d.EpochUnixNano, 10))
	b.WriteString(`","dropped":"`)
	b.WriteString(strconv.FormatUint(d.Dropped, 10))
	b.WriteString(`"}}`)
	_, err := io.WriteString(w, b.String())
	return err
}

func writeChromeEvent(b *strings.Builder, ev Event) {
	ph := "i"
	if ev.Dur > 0 {
		ph = "X"
	}
	fmt.Fprintf(b, `{"name":%q,"ph":%q,"pid":1,"tid":%d,"ts":%s`,
		ev.Kind.String(), ph, ev.SID, microString(ev.TS))
	if ph == "X" {
		fmt.Fprintf(b, `,"dur":%s`, microString(ev.Dur))
	} else {
		b.WriteString(`,"s":"t"`)
	}
	fmt.Fprintf(b, `,"args":{"seq":"%d","trace_id":"%d","sid":"%d","wsn":"%d","arg1":"%d","arg2":"%d"}}`,
		ev.Seq, ev.TraceID, ev.SID, ev.WSN, ev.Arg1, ev.Arg2)
}

// microString renders nanoseconds as a decimal microsecond value,
// keeping nanosecond precision without floating point (so output is
// byte-stable across platforms).
func microString(ns int64) string {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	s := strconv.FormatInt(ns/1000, 10)
	if rem := ns % 1000; rem != 0 {
		s += "." + fmt.Sprintf("%03d", rem)
		s = strings.TrimRight(s, "0")
	}
	if neg {
		s = "-" + s
	}
	return s
}

// Timeline renders the dump as a human-readable per-batch timeline:
// events grouped by trace ID (untraced events last, by sequence), each
// line showing offset from the dump's first event, duration, kind and
// identity. It is the default `eleosctl trace` output.
func Timeline(w io.Writer, d Dump) error {
	if len(d.Events) == 0 {
		_, err := fmt.Fprintf(w, "trace: empty (dropped %d)\n", d.Dropped)
		return err
	}
	base := d.Events[0].TS
	for _, ev := range d.Events {
		if ev.TS < base {
			base = ev.TS
		}
	}
	// Group by trace ID, preserving first-seen order of IDs.
	order := []uint64{}
	groups := map[uint64][]Event{}
	for _, ev := range d.Events {
		if _, ok := groups[ev.TraceID]; !ok {
			order = append(order, ev.TraceID)
		}
		groups[ev.TraceID] = append(groups[ev.TraceID], ev)
	}
	if _, err := fmt.Fprintf(w, "trace: %d events, %d dropped, %d trace IDs\n",
		len(d.Events), d.Dropped, len(order)); err != nil {
		return err
	}
	for _, id := range order {
		evs := groups[id]
		if id == 0 {
			fmt.Fprintf(w, "-- untraced (%d events)\n", len(evs))
		} else {
			fmt.Fprintf(w, "-- trace %d (sid=%d wsn=%d, %d events)\n",
				id, evs[0].SID, evs[0].WSN, len(evs))
		}
		for _, ev := range evs {
			durStr := "instant"
			if ev.Dur > 0 {
				durStr = fmt.Sprintf("%.3fms", float64(ev.Dur)/1e6)
			}
			if _, err := fmt.Fprintf(w, "  +%10.3fms %-14s %-8s seq=%-8d sid=%-4d wsn=%-6d arg1=%d arg2=%d\n",
				float64(ev.TS-base)/1e6, ev.Kind, durStr, ev.Seq, ev.SID, ev.WSN, ev.Arg1, ev.Arg2); err != nil {
				return err
			}
		}
	}
	return nil
}
