// Package trace is the controller's per-request tracing subsystem: an
// always-on, lock-free flight recorder holding the last N thousand typed
// events of the write path, GC, migration, checkpointing, the WAL and
// the flash workers.
//
// The design goal is the one SimpleSSD and EagleTree argue for — being
// able to follow a single batch through queueing, program and commit
// stages — without a tracing mode that has to be "turned on" before the
// incident. The recorder is a fixed-size ring of event slots written
// with atomic stores only; emitting costs one atomic ticket increment, a
// clock read and nine atomic stores, cheap enough to stay enabled in
// production (the traceoverhead benchmark gates it below 5% of
// CPU-bound write throughput). When the ring is full the oldest events
// are overwritten; Dump reports how many were lost.
//
// Events carry a trace ID that ties a batch's spans together across
// layers. IDs originate at the network front-end (or from NewTraceID for
// in-process callers) and propagate through WriteBatchTraced down to
// migration actions triggered by the batch's own media failure, so a
// failure's aftermath is attributable to the request that caused it.
package trace

import (
	"sync/atomic"
	"time"
)

// Kind identifies the event type. Arg1/Arg2 semantics are per kind (see
// the constants).
type Kind uint8

const (
	KNone Kind = iota

	// Server events. The connection serial rides in SID so a dump groups
	// per connection (it shares the identity slot sessions use).
	KConnOpen  // instant; SID = connection serial
	KConnClose // instant; SID = connection serial
	KRequest   // span over one request; SID = connection serial, Arg1 = message type, Arg2 = body bytes

	// Write-path spans of one batch (§IV phases). All carry the batch's
	// trace ID, SID and WSN.
	KBatchStart  // instant at admission start; Arg1 = page count
	KClaim       // span: lock acquisition + WSN admission wait
	KInit        // span: provision + init log records + submit (under c.mu)
	KProgramWait // span: flash programs on the channel workers (c.mu released)
	KForceWait   // span: commit-record group-commit force (c.mu released)
	KInstall     // span: mapping/summary/session install (under c.mu)
	KBatchEnd    // instant; Arg1 = 0 ok, 1 error
	KMediaAbort  // instant on program failure; Arg1 = failed EBLOCK count

	// Background actions.
	KGC         // span: one EBLOCK collection; Arg1 = channel, Arg2 = eblock
	KCheckpoint // span: one fuzzy checkpoint
	KMigration  // span: one EBLOCK migration; Arg1 = channel, Arg2 = eblock;
	// carries the trace ID of the batch whose failure triggered it (0 if none)

	// Media and log events.
	KFlashProgram // span: one WBLOCK program; Arg1 = channel, Arg2 = eblock
	KFlashErase   // span: one EBLOCK erase; Arg1 = channel, Arg2 = eblock
	KWalForce     // Arg1 = 1 leader page write (span), 0 free ride (instant); Arg2 = records flushed

	KReadLookup   // span: locked mapping lookup + reader pin; Arg1 = LPID
	KReadCacheHit // instant: page served from the read cache; Arg1 = LPID, Arg2 = bytes
	KReadFlash    // span: flash wait (pin held, c.mu released); Arg1 = LPID, Arg2 = bytes

	kindCount // keep last
)

var kindNames = [...]string{
	KNone:         "none",
	KConnOpen:     "conn_open",
	KConnClose:    "conn_close",
	KRequest:      "request",
	KBatchStart:   "batch_start",
	KClaim:        "claim",
	KInit:         "init",
	KProgramWait:  "program_wait",
	KForceWait:    "force_wait",
	KInstall:      "install",
	KBatchEnd:     "batch_end",
	KMediaAbort:   "media_abort",
	KGC:           "gc",
	KCheckpoint:   "checkpoint",
	KMigration:    "migration",
	KFlashProgram: "flash_program",
	KFlashErase:   "flash_erase",
	KWalForce:     "wal_force",
	KReadLookup:   "read_lookup",
	KReadCacheHit: "read_cache_hit",
	KReadFlash:    "read_flash_wait",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "kind(?)"
}

// Event is one recorded trace event. TS is nanoseconds since the
// recorder's epoch (monotonic) at the *start* of the event; Dur is the
// span length (0 for instants). Seq is the global emit ticket: events
// sorted by Seq are in emission order across all goroutines.
type Event struct {
	Seq     uint64
	Kind    Kind
	TS      int64
	Dur     int64
	TraceID uint64
	SID     uint64
	WSN     uint64
	Arg1    int64
	Arg2    int64
}

// Dump is a consistent snapshot of the recorder: the surviving events in
// Seq order, the count of events overwritten before the snapshot, and
// the wall-clock instant of the monotonic epoch so timestamps can be
// rendered as absolute times.
type Dump struct {
	EpochUnixNano int64
	Dropped       uint64
	Events        []Event
}

// slot holds one event with every field atomic, so concurrent Emit and
// Dump need no locks and stay race-detector clean. The publish protocol:
// a writer claims ticket t, stores ticket=0 (invalidating the slot),
// stores the payload, then stores ticket=t. A reader copies the payload
// only between two loads that both observe ticket==t; a torn slot (a
// writer lapped the ring mid-read) fails the check and is skipped.
type slot struct {
	ticket  atomic.Uint64
	kind    atomic.Uint32
	ts      atomic.Int64
	dur     atomic.Int64
	traceID atomic.Uint64
	sid     atomic.Uint64
	wsn     atomic.Uint64
	arg1    atomic.Int64
	arg2    atomic.Int64
}

// DefaultSize is the default ring capacity in events (~8k events ≈ a few
// hundred batches of full write-path spans; fixed ~1 MB of memory).
const DefaultSize = 8192

// Recorder is the flight recorder. The zero value and nil are valid
// disabled recorders: every method no-ops (or returns empty), so callers
// never nil-check.
type Recorder struct {
	on    bool
	mask  uint64
	slots []slot

	epoch     time.Time // monotonic base for TS
	epochWall int64     // epoch as wall-clock UnixNano

	cursor atomic.Uint64 // last claimed ticket; tickets start at 1
	nextID atomic.Uint64 // trace-ID allocator
}

// New creates an enabled recorder with capacity for at least size events
// (rounded up to a power of two, minimum 64).
func New(size int) *Recorder {
	n := uint64(64)
	for n < uint64(size) {
		n <<= 1
	}
	now := time.Now()
	return &Recorder{
		on:        true,
		mask:      n - 1,
		slots:     make([]slot, n),
		epoch:     now,
		epochWall: now.UnixNano(),
	}
}

// NewDisabled returns a recorder that records nothing: Emit is a
// two-instruction branch and Enabled reports false, giving overhead
// benchmarks their baseline arm.
func NewDisabled() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder records events. Nil-safe, so a
// timing gate can read it without a nil check.
func (r *Recorder) Enabled() bool { return r != nil && r.on }

// Size returns the ring capacity in events (0 when disabled).
func (r *Recorder) Size() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// NewTraceID allocates a process-unique trace ID (never 0).
func (r *Recorder) NewTraceID() uint64 {
	if r == nil {
		return 0
	}
	return r.nextID.Add(1)
}

// Now returns the current time when the recorder is enabled and the zero
// time otherwise — the clock read other layers share with their metrics
// timing gates.
func (r *Recorder) Now() time.Time {
	if !r.Enabled() {
		return time.Time{}
	}
	return time.Now()
}

// Emit records an instant event stamped with the current time.
func (r *Recorder) Emit(k Kind, traceID, sid, wsn uint64, arg1, arg2 int64) {
	if !r.Enabled() {
		return
	}
	r.record(k, int64(time.Since(r.epoch)), 0, traceID, sid, wsn, arg1, arg2)
}

// Span records an event that started at `start` and ends now. A zero
// start (from a disabled Now) degrades to an instant at the epoch, but
// callers gate on Enabled so that never ships real events.
func (r *Recorder) Span(k Kind, traceID, sid, wsn uint64, start time.Time, arg1, arg2 int64) {
	if !r.Enabled() {
		return
	}
	if start.IsZero() {
		r.record(k, 0, 0, traceID, sid, wsn, arg1, arg2)
		return
	}
	ts := start.Sub(r.epoch)
	r.record(k, int64(ts), int64(time.Since(start)), traceID, sid, wsn, arg1, arg2)
}

func (r *Recorder) record(k Kind, ts, dur int64, traceID, sid, wsn uint64, arg1, arg2 int64) {
	t := r.cursor.Add(1)
	s := &r.slots[(t-1)&r.mask]
	s.ticket.Store(0)
	s.kind.Store(uint32(k))
	s.ts.Store(ts)
	s.dur.Store(dur)
	s.traceID.Store(traceID)
	s.sid.Store(sid)
	s.wsn.Store(wsn)
	s.arg1.Store(arg1)
	s.arg2.Store(arg2)
	s.ticket.Store(t)
}

// Dump snapshots the ring. Events come back sorted by Seq (emission
// order); slots being concurrently rewritten are skipped rather than
// returned torn. Safe to call at any time from any goroutine.
func (r *Recorder) Dump() Dump {
	if !r.Enabled() {
		return Dump{}
	}
	cur := r.cursor.Load()
	lo := uint64(1)
	n := uint64(len(r.slots))
	if cur > n {
		lo = cur - n + 1
	}
	d := Dump{EpochUnixNano: r.epochWall, Dropped: lo - 1}
	d.Events = make([]Event, 0, cur-lo+1)
	for t := lo; t <= cur; t++ {
		s := &r.slots[(t-1)&r.mask]
		if s.ticket.Load() != t {
			continue // unpublished or already overwritten
		}
		ev := Event{
			Seq:     t,
			Kind:    Kind(s.kind.Load()),
			TS:      s.ts.Load(),
			Dur:     s.dur.Load(),
			TraceID: s.traceID.Load(),
			SID:     s.sid.Load(),
			WSN:     s.wsn.Load(),
			Arg1:    s.arg1.Load(),
			Arg2:    s.arg2.Load(),
		}
		if s.ticket.Load() != t {
			continue // a writer lapped the ring mid-copy: torn, drop it
		}
		d.Events = append(d.Events, ev)
	}
	return d
}
