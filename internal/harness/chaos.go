package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"eleos/internal/chaos"
)

// The chaos experiment is not a throughput benchmark: it executes the
// seeded fault-schedule corpus from internal/chaos and reports coverage —
// how many schedules ran, which fault kinds they composed, how many
// injected faults actually fired, and whether the full invariant set held
// on every one. Recording the numbers alongside the perf experiments
// keeps the robustness trajectory visible the same way BENCH_network.json
// keeps the service path visible (DESIGN.md §8).

// ChaosRow is one executed schedule's summary.
type ChaosRow struct {
	Seed          int64
	Writers       int
	Batches       int // per writer
	Pages         int // unique pages per batch (plus one churn page)
	FaultKinds    int // distinct fault types composed (of 4)
	ProgramFaults int64
	EraseFaults   int64
	Kills         int
	Recoveries    int
	Acked         int64
	MediaAborts   int64
	VerifiedReads int64
	Elapsed       time.Duration
	Violations    []string // empty = passed
}

// ChaosReport aggregates a corpus run.
type ChaosReport struct {
	Rows []ChaosRow

	Seeds         int
	Passed        int
	ProgramFaults int64
	EraseFaults   int64
	Kills         int
	Recoveries    int
	Acked         int64
	VerifiedReads int64
	KindCoverage  [5]int // KindCoverage[k] = schedules composing exactly k fault kinds
	Elapsed       time.Duration
}

// Failed reports whether any schedule in the corpus violated an invariant.
func (r ChaosReport) Failed() bool { return r.Passed != r.Seeds }

// RunChaos generates and executes schedules for seeds 1..seeds, collecting
// per-schedule coverage and the aggregate. Every run uses the same
// generator as the CI smoke corpus, so `benchrunner chaos -chaosseeds N`
// is exactly the long-run test surface with a recorded report.
func RunChaos(seeds int, logf func(format string, args ...any)) (ChaosReport, error) {
	if seeds < 1 {
		return ChaosReport{}, fmt.Errorf("chaos: need at least one seed, got %d", seeds)
	}
	var rep ChaosReport
	start := time.Now()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		s := chaos.Generate(seed)
		t0 := time.Now()
		res := chaos.Run(s, chaos.Options{})
		row := ChaosRow{
			Seed:          seed,
			Writers:       s.Writers,
			Batches:       s.Batches,
			Pages:         s.Pages,
			FaultKinds:    s.FaultKinds(),
			ProgramFaults: res.FiredProgramFaults,
			EraseFaults:   res.FiredEraseFaults,
			Kills:         res.Kills,
			Recoveries:    res.Recoveries,
			Acked:         res.Acked,
			MediaAborts:   res.MediaAborts,
			VerifiedReads: res.VerifiedReads,
			Elapsed:       time.Since(t0),
			Violations:    res.Violations,
		}
		rep.Rows = append(rep.Rows, row)
		rep.Seeds++
		if !res.Failed() {
			rep.Passed++
		} else if logf != nil {
			logf("seed %d FAILED:\n  %s\nreplay: go test ./internal/chaos -run TestChaosReplay -chaos.seed=%d",
				seed, strings.Join(res.Violations, "\n  "), seed)
		}
		rep.ProgramFaults += res.FiredProgramFaults
		rep.EraseFaults += res.FiredEraseFaults
		rep.Kills += res.Kills
		rep.Recoveries += res.Recoveries
		rep.Acked += res.Acked
		rep.VerifiedReads += res.VerifiedReads
		rep.KindCoverage[s.FaultKinds()]++
		if logf != nil {
			logf("seed %d: %dw×%db kinds=%d pfault=%d efault=%d kills=%d recov=%d acked=%d reads=%d (%.1fs)",
				seed, s.Writers, s.Batches, s.FaultKinds(), res.FiredProgramFaults,
				res.FiredEraseFaults, res.Kills, res.Recoveries, res.Acked, res.VerifiedReads, row.Elapsed.Seconds())
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// PrintChaos renders the corpus table and coverage summary.
func PrintChaos(w io.Writer, rep ChaosReport) {
	fmt.Fprintln(w, "Chaos corpus (seeded fault schedules, full invariant check per schedule)")
	fmt.Fprintf(w, "%6s %8s %8s %6s %7s %7s %6s %6s %7s %8s %7s\n",
		"seed", "writers", "batches", "kinds", "pfault", "efault", "kills", "recov", "acked", "elapsed", "result")
	for _, r := range rep.Rows {
		result := "pass"
		if len(r.Violations) > 0 {
			result = "FAIL"
		}
		fmt.Fprintf(w, "%6d %8d %8d %6d %7d %7d %6d %6d %7d %7.1fs %7s\n",
			r.Seed, r.Writers, r.Batches, r.FaultKinds, r.ProgramFaults,
			r.EraseFaults, r.Kills, r.Recoveries, r.Acked, r.Elapsed.Seconds(), result)
	}
	fmt.Fprintf(w, "\n%d/%d schedules passed in %.1fs; fired %d program faults, %d erase faults, %d connection kills, %d crash-recover loops; %d batches acked, %d reader-verified reads\n",
		rep.Passed, rep.Seeds, rep.Elapsed.Seconds(),
		rep.ProgramFaults, rep.EraseFaults, rep.Kills, rep.Recoveries, rep.Acked, rep.VerifiedReads)
	fmt.Fprintf(w, "fault-kind mix:")
	for k := 1; k <= 4; k++ {
		fmt.Fprintf(w, " %d-kind=%d", k, rep.KindCoverage[k])
	}
	fmt.Fprintln(w)
	if rep.Failed() {
		fmt.Fprintln(w, "replay any failing seed: go test ./internal/chaos -run TestChaosReplay -chaos.seed=N")
	}
}

// chaosJSONRow flattens a ChaosRow with stable, unit-explicit fields.
type chaosJSONRow struct {
	Seed          int64    `json:"seed"`
	Writers       int      `json:"writers"`
	Batches       int      `json:"batches_per_writer"`
	Pages         int      `json:"pages_per_batch"`
	FaultKinds    int      `json:"fault_kinds"`
	ProgramFaults int64    `json:"program_faults_fired"`
	EraseFaults   int64    `json:"erase_faults_fired"`
	Kills         int      `json:"connection_kills"`
	Recoveries    int      `json:"crash_recoveries"`
	Acked         int64    `json:"batches_acked"`
	MediaAborts   int64    `json:"media_aborts_observed"`
	VerifiedReads int64    `json:"reader_verified_reads"`
	ElapsedMS     float64  `json:"elapsed_ms"`
	Violations    []string `json:"violations,omitempty"`
}

// WriteChaosJSON emits the corpus report as BENCH_chaos.json so the
// robustness surface joins the recorded experiment trajectory.
func WriteChaosJSON(path string, rep ChaosReport) error {
	doc := struct {
		Experiment    string         `json:"experiment"`
		Seeds         int            `json:"seeds"`
		Passed        int            `json:"passed"`
		ProgramFaults int64          `json:"program_faults_fired"`
		EraseFaults   int64          `json:"erase_faults_fired"`
		Kills         int            `json:"connection_kills"`
		Recoveries    int            `json:"crash_recoveries"`
		Acked         int64          `json:"batches_acked"`
		VerifiedReads int64          `json:"reader_verified_reads"`
		ElapsedMS     float64        `json:"elapsed_ms"`
		Rows          []chaosJSONRow `json:"rows"`
	}{
		Experiment:    "chaos",
		Seeds:         rep.Seeds,
		Passed:        rep.Passed,
		ProgramFaults: rep.ProgramFaults,
		EraseFaults:   rep.EraseFaults,
		Kills:         rep.Kills,
		Recoveries:    rep.Recoveries,
		Acked:         rep.Acked,
		VerifiedReads: rep.VerifiedReads,
		ElapsedMS:     float64(rep.Elapsed.Microseconds()) / 1000,
	}
	for _, r := range rep.Rows {
		doc.Rows = append(doc.Rows, chaosJSONRow{
			Seed:          r.Seed,
			Writers:       r.Writers,
			Batches:       r.Batches,
			Pages:         r.Pages,
			FaultKinds:    r.FaultKinds,
			ProgramFaults: r.ProgramFaults,
			EraseFaults:   r.EraseFaults,
			Kills:         r.Kills,
			Recoveries:    r.Recoveries,
			Acked:         r.Acked,
			MediaAborts:   r.MediaAborts,
			VerifiedReads: r.VerifiedReads,
			ElapsedMS:     float64(r.Elapsed.Microseconds()) / 1000,
			Violations:    r.Violations,
		})
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
