package harness

import "testing"

// TestHotpathSmoke runs a miniature hotpath comparison — every arm must
// complete, move the expected bytes, and the coalesced arm must really
// merge flushes. Speedups are hardware truths the CI ratchet gate
// checks at full scale; here only sanity is asserted.
func TestHotpathSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP experiment")
	}
	res, err := RunHotpath(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []HotpathArm{res.Copy, res.Pooled, res.Coalesced} {
		if arm.Batches != hotClients*20 {
			t.Fatalf("%s: %d batches, want %d", arm.Mode, arm.Batches, hotClients*20)
		}
		if arm.MBPerSec <= 0 {
			t.Fatalf("%s: nonpositive throughput", arm.Mode)
		}
	}
	if res.Coalesced.GroupWrites == 0 {
		t.Fatal("coalesced arm merged nothing")
	}
	if res.SpeedupPooled <= 0 || res.SpeedupCoalesced <= 0 {
		t.Fatalf("speedups not computed: %+v", res)
	}
}
