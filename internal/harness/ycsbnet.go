package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/server"
	"eleos/internal/ycsb"
)

// The ycsbnet experiment drives the standard YCSB mixes over loopback
// TCP against the full production read path: read_page/read_batch wire
// commands, backpressure admission, the byte-sized tiered read cache,
// and scatter-gather flash reads, with session-ordered flushes as the
// update half. Where the network experiment measures the write front-end
// alone, this one reports what a key-value deployment actually sees —
// read p50/p99 and update throughput per mix — plus the cache's
// effectiveness: how many wire reads were served without touching flash.
//
// Alongside the three mixes, RunReadSpeedup measures the tentpole claim
// in isolation: in-process concurrent readers against the pre-refactor
// global-lock read path (Config.SerialReads), same device, same working
// set. The concurrent path must win by overlapping reads across flash
// channels; with the cache on, warm reads must skip flash entirely.

// YCSBNetRow is one workload mix's measurement.
type YCSBNetRow struct {
	Workload   string // "A" (50/50), "B" (95% read), "C" (100% read)
	Ops        int
	Reads      int
	Updates    int
	Elapsed    time.Duration
	ReadP50    time.Duration
	ReadP99    time.Duration
	UpdateP50  time.Duration
	WriteMBps  float64 // update payload throughput
	WireReads  int64   // read ops served by the server (read.reads)
	CacheHits  int64   // served from the tiered cache (read.cache_hits)
	FlashLoads int64   // reads that reached flash (read.flash_loads)
}

// ReadSpeedupResult compares the concurrent read path against the
// global-lock baseline, and the cache against both.
type ReadSpeedupResult struct {
	Readers       int
	ReadsPerArm   int
	SerialElapsed time.Duration // Config.SerialReads: every read under c.mu
	ConcElapsed   time.Duration // pinned-EBLOCK fence, reads overlap channels
	CachedElapsed time.Duration // warm tiered cache: flash untouched
	Speedup       float64       // serial / concurrent
	CachedSpeedup float64       // serial / cached
	FlashReadsHot int64         // RBLOCK reads during the cached arm (want 0)
}

const (
	ynValueBytes = 1024
	ynBatchEvery = 16 // every 16th read goes through read_batch (4 keys)
)

func ycsbnetConfigs() []ycsb.Config {
	base := func() ycsb.Config {
		return ycsb.Config{ValueBytes: ynValueBytes, Theta: 0.99, Seed: 1}
	}
	a := base()
	a.UpdateEvery = 1 // 50/50
	b := base()
	b.UpdateEvery = 19
	b.ReadHeavy = true // 95% reads
	c := base()
	c.UpdateEvery = 0 // 100% reads
	return []ycsb.Config{a, b, c}
}

func ycsbnetName(i int) string { return string(rune('A' + i)) }

// RunYCSBNet runs the three mixes. records is the working-set size (every
// record is preloaded, so YCSB-C never misses), ops the total operation
// count per mix split across clients, cacheBytes the server's read-cache
// capacity (0 disables it).
func RunYCSBNet(records uint64, ops, clients int, cacheBytes int64) ([]YCSBNetRow, error) {
	var rows []YCSBNetRow
	for i, wcfg := range ycsbnetConfigs() {
		wcfg.Records = records
		row, err := runYCSBNetOne(ycsbnetName(i), wcfg, ops, clients, cacheBytes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runYCSBNetOne(name string, wcfg ycsb.Config, ops, clients int, cacheBytes int64) (YCSBNetRow, error) {
	geo := flash.Geometry{
		Channels: 8, EBlocksPerChannel: 64,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, flash.TypicalNANDLatency())
	dev.SetWallLatencyScale(1)
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 16 << 20
	cfg.ReadCacheBytes = cacheBytes
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		return YCSBNetRow{}, err
	}
	srv := server.New(ctl, server.Config{MaxConns: clients + 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return YCSBNetRow{}, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()

	// Preload every record so reads never miss.
	wl, err := ycsb.NewWorkload(wcfg)
	if err != nil {
		return YCSBNetRow{}, err
	}
	loader, err := client.Dial(ln.Addr().String(), client.Options{Seed: 99})
	if err != nil {
		return YCSBNetRow{}, err
	}
	lsess, err := loader.NewSession()
	if err != nil {
		return YCSBNetRow{}, err
	}
	var batch []core.LPage
	for key := uint64(0); key < wcfg.Records; key++ {
		batch = append(batch, core.LPage{LPID: addr.LPID(key + 1), Data: wl.Value(key, 0)})
		if len(batch) == 64 || key == wcfg.Records-1 {
			if err := lsess.Flush(batch); err != nil {
				return YCSBNetRow{}, fmt.Errorf("preload: %w", err)
			}
			batch = batch[:0]
		}
	}

	type clientRes struct {
		readLats, updLats []time.Duration
		reads, updates    int
		updBytes          int64
	}
	results := make([]clientRes, clients)
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	perClient := ops / clients
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ccfg := wcfg
			ccfg.Seed = wcfg.Seed + int64(w)*101
			cwl, err := ycsb.NewWorkload(ccfg)
			if err != nil {
				errc <- err
				return
			}
			cl, err := client.Dial(ln.Addr().String(), client.Options{Seed: int64(w + 1)})
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			sess, err := cl.NewSession()
			if err != nil {
				errc <- err
				return
			}
			res := &results[w]
			version := uint64(1)
			var pend []addr.LPID
			for i := 0; i < perClient; i++ {
				op := cwl.Next()
				lpid := addr.LPID(op.Key + 1)
				if op.Kind == ycsb.OpUpdate {
					val := cwl.Value(op.Key, version)
					version++
					t0 := time.Now()
					if err := sess.Flush([]core.LPage{{LPID: lpid, Data: val}}); err != nil {
						errc <- fmt.Errorf("client %d update: %w", w, err)
						return
					}
					res.updLats = append(res.updLats, time.Since(t0))
					res.updates++
					res.updBytes += int64(len(val))
					continue
				}
				// A slice of the reads goes through read_batch to keep the
				// scatter-gather path hot; the rest are single read_pages.
				if res.reads%ynBatchEvery < 4 {
					pend = append(pend, lpid)
					res.reads++
					if len(pend) == 4 {
						t0 := time.Now()
						pages, err := cl.ReadBatch(pend)
						lat := time.Since(t0) / time.Duration(len(pend))
						if err != nil {
							errc <- fmt.Errorf("client %d read_batch: %w", w, err)
							return
						}
						for _, p := range pages {
							if p == nil {
								errc <- fmt.Errorf("client %d: preloaded key missing", w)
								return
							}
						}
						for range pend {
							res.readLats = append(res.readLats, lat)
						}
						pend = pend[:0]
					}
					continue
				}
				t0 := time.Now()
				data, err := cl.Read(lpid)
				if err != nil {
					errc <- fmt.Errorf("client %d read: %w", w, err)
					return
				}
				if len(data) == 0 {
					errc <- fmt.Errorf("client %d: empty page", w)
					return
				}
				res.readLats = append(res.readLats, time.Since(t0))
				res.reads++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		return YCSBNetRow{}, err
	}

	snap := ctl.MetricsSnapshot()
	row := YCSBNetRow{
		Workload:   name,
		Elapsed:    elapsed,
		WireReads:  snap.Counter("read.reads") + snap.Counter("read.batches"),
		CacheHits:  snap.Counter("read.cache_hits"),
		FlashLoads: snap.Counter("read.flash_loads"),
	}
	var readLats, updLats []time.Duration
	var updBytes int64
	for _, r := range results {
		row.Reads += r.reads
		row.Updates += r.updates
		readLats = append(readLats, r.readLats...)
		updLats = append(updLats, r.updLats...)
		updBytes += r.updBytes
	}
	row.Ops = row.Reads + row.Updates
	sort.Slice(readLats, func(i, j int) bool { return readLats[i] < readLats[j] })
	sort.Slice(updLats, func(i, j int) bool { return updLats[i] < updLats[j] })
	row.ReadP50 = percentile(readLats, 50)
	row.ReadP99 = percentile(readLats, 99)
	row.UpdateP50 = percentile(updLats, 50)
	if elapsed > 0 {
		row.WriteMBps = float64(updBytes) / (1 << 20) / elapsed.Seconds()
	}
	return row, nil
}

// RunReadSpeedup measures the concurrent read path against the
// global-lock baseline and the warm cache, each arm on a fresh
// controller with the same seeded working set.
func RunReadSpeedup(readers, readsPerArm int) (ReadSpeedupResult, error) {
	res := ReadSpeedupResult{Readers: readers, ReadsPerArm: readsPerArm}

	serial, _, err := readArm(readers, readsPerArm, true, 0)
	if err != nil {
		return res, err
	}
	conc, _, err := readArm(readers, readsPerArm, false, 0)
	if err != nil {
		return res, err
	}
	cached, flashHot, err := readArm(readers, readsPerArm, false, 64<<20)
	if err != nil {
		return res, err
	}
	res.SerialElapsed, res.ConcElapsed, res.CachedElapsed = serial, conc, cached
	res.FlashReadsHot = flashHot
	if conc > 0 {
		res.Speedup = float64(serial) / float64(conc)
	}
	if cached > 0 {
		res.CachedSpeedup = float64(serial) / float64(cached)
	}
	return res, nil
}

// readArm runs one configuration: preload a working set spread across
// channels, warm it once, then time `readers` goroutines reading it.
// Returns the timed elapsed and the RBLOCK reads issued during the timed
// window.
func readArm(readers, reads int, serialReads bool, cacheBytes int64) (time.Duration, int64, error) {
	geo := flash.Geometry{
		Channels: 8, EBlocksPerChannel: 64,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, flash.TypicalNANDLatency())
	cfg := core.DefaultConfig()
	cfg.SerialReads = serialReads
	cfg.ReadCacheBytes = cacheBytes
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		return 0, 0, err
	}
	const nPages = 512
	var batch []core.LPage
	for i := 0; i < nPages; i++ {
		data := make([]byte, 2048)
		for j := range data {
			data[j] = byte(i * j)
		}
		batch = append(batch, core.LPage{LPID: addr.LPID(i + 1), Data: data})
		if len(batch) == 64 {
			if err := ctl.WriteBatch(0, 0, batch); err != nil {
				return 0, 0, err
			}
			batch = batch[:0]
		}
	}
	// Warm pass (fills the cache when enabled) before latency emulation
	// starts, so only the timed reads pay wall-clock channel occupancy.
	for i := 0; i < nPages; i++ {
		if _, err := ctl.Read(addr.LPID(i + 1)); err != nil {
			return 0, 0, err
		}
	}
	dev.SetWallLatencyScale(1)
	before := dev.Stats().RBlocksRead
	errc := make(chan error, readers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reads/readers; i++ {
				lpid := addr.LPID(1 + (w*131+i*17)%nPages)
				if _, err := ctl.Read(lpid); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		return 0, 0, err
	}
	return elapsed, int64(dev.Stats().RBlocksRead - before), nil
}

// PrintYCSBNet renders the mix table and the speedup microbench.
func PrintYCSBNet(w io.Writer, rows []YCSBNetRow, sp ReadSpeedupResult) {
	fmt.Fprintln(w, "YCSB over loopback TCP (read_page/read_batch wire path, tiered read cache)")
	fmt.Fprintf(w, "%4s %7s %7s %8s %10s %10s %10s %9s %10s %10s %10s\n",
		"mix", "reads", "updates", "rd p50", "rd p99", "upd p50", "wr MB/s",
		"wire rds", "cache hit", "flash ld", "hit %")
	for _, r := range rows {
		hitPct := 0.0
		if r.WireReads > 0 {
			hitPct = 100 * float64(r.CacheHits) / float64(r.CacheHits+r.FlashLoads)
		}
		fmt.Fprintf(w, "%4s %7d %7d %8s %10s %10s %10.2f %9d %10d %10d %9.1f%%\n",
			r.Workload, r.Reads, r.Updates,
			r.ReadP50.Round(10*time.Microsecond), r.ReadP99.Round(10*time.Microsecond),
			r.UpdateP50.Round(10*time.Microsecond), r.WriteMBps,
			r.WireReads, r.CacheHits, r.FlashLoads, hitPct)
	}
	fmt.Fprintf(w, "\nconcurrent-reader microbench (%d readers, %d reads/arm, in-process):\n",
		sp.Readers, sp.ReadsPerArm)
	fmt.Fprintf(w, "  global-lock baseline %10s\n", sp.SerialElapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  concurrent fence     %10s  (%.2fx)\n", sp.ConcElapsed.Round(time.Millisecond), sp.Speedup)
	fmt.Fprintf(w, "  warm tiered cache    %10s  (%.2fx, %d flash RBLOCK reads)\n",
		sp.CachedElapsed.Round(time.Millisecond), sp.CachedSpeedup, sp.FlashReadsHot)
}

// ycsbnetJSONRow flattens a row with unit-explicit fields.
type ycsbnetJSONRow struct {
	Workload    string  `json:"workload"`
	Ops         int     `json:"ops"`
	Reads       int     `json:"reads"`
	Updates     int     `json:"updates"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	ReadP50Us   int64   `json:"read_p50_us"`
	ReadP99Us   int64   `json:"read_p99_us"`
	UpdateP50Us int64   `json:"update_p50_us"`
	WriteMBps   float64 `json:"write_mb_per_sec"`
	WireReads   int64   `json:"wire_reads"`
	CacheHits   int64   `json:"cache_hits"`
	FlashLoads  int64   `json:"flash_loads"`
}

// WriteYCSBNetJSON emits BENCH_ycsbnet.json so the read path joins the
// recorded perf trajectory.
func WriteYCSBNetJSON(path string, records uint64, clients int, cacheBytes int64, rows []YCSBNetRow, sp ReadSpeedupResult) error {
	doc := struct {
		Experiment string           `json:"experiment"`
		Transport  string           `json:"transport"`
		Records    uint64           `json:"records"`
		Clients    int              `json:"clients"`
		CacheBytes int64            `json:"cache_bytes"`
		ValueBytes int              `json:"value_bytes"`
		Rows       []ycsbnetJSONRow `json:"rows"`
		Speedup    struct {
			Readers       int     `json:"readers"`
			ReadsPerArm   int     `json:"reads_per_arm"`
			SerialMS      float64 `json:"serial_ms"`
			ConcurrentMS  float64 `json:"concurrent_ms"`
			CachedMS      float64 `json:"cached_ms"`
			Speedup       float64 `json:"speedup"`
			CachedSpeedup float64 `json:"cached_speedup"`
			FlashReadsHot int64   `json:"flash_rblock_reads_warm"`
		} `json:"read_speedup"`
	}{
		Experiment: "ycsbnet",
		Transport:  "loopback-tcp",
		Records:    records,
		Clients:    clients,
		CacheBytes: cacheBytes,
		ValueBytes: ynValueBytes,
	}
	for _, r := range rows {
		doc.Rows = append(doc.Rows, ycsbnetJSONRow{
			Workload:    r.Workload,
			Ops:         r.Ops,
			Reads:       r.Reads,
			Updates:     r.Updates,
			ElapsedMS:   float64(r.Elapsed.Microseconds()) / 1000,
			ReadP50Us:   r.ReadP50.Microseconds(),
			ReadP99Us:   r.ReadP99.Microseconds(),
			UpdateP50Us: r.UpdateP50.Microseconds(),
			WriteMBps:   r.WriteMBps,
			WireReads:   r.WireReads,
			CacheHits:   r.CacheHits,
			FlashLoads:  r.FlashLoads,
		})
	}
	doc.Speedup.Readers = sp.Readers
	doc.Speedup.ReadsPerArm = sp.ReadsPerArm
	doc.Speedup.SerialMS = float64(sp.SerialElapsed.Microseconds()) / 1000
	doc.Speedup.ConcurrentMS = float64(sp.ConcElapsed.Microseconds()) / 1000
	doc.Speedup.CachedMS = float64(sp.CachedElapsed.Microseconds()) / 1000
	doc.Speedup.Speedup = sp.Speedup
	doc.Speedup.CachedSpeedup = sp.CachedSpeedup
	doc.Speedup.FlashReadsHot = sp.FlashReadsHot
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
