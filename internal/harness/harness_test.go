package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"eleos/internal/flash"
	"eleos/internal/nvme"
	"eleos/internal/tpcc"
)

var (
	traceOnce sync.Once
	traceVal  *tpcc.Trace
	traceErr  error
)

func testTrace(t *testing.T) *tpcc.Trace {
	t.Helper()
	traceOnce.Do(func() {
		cfg := tpcc.Config{Warehouses: 1, DistrictsPerWH: 4, CustomersPerDistrict: 100, ItemsPerWarehouse: 300, Seed: 1}
		traceVal, traceErr = tpcc.Collect(tpcc.CollectOptions{
			Config: cfg, Transactions: 2500, CacheBytes: 128 << 10,
		})
	})
	if traceErr != nil {
		t.Fatal(traceErr)
	}
	return traceVal
}

func TestReplayAllInterfaces(t *testing.T) {
	tr := testTrace(t)
	for _, iface := range Interfaces {
		res, err := ReplayTPCC(ReplayOptions{
			Trace: tr, Interface: iface, BufferBytes: 256 << 10,
			Profile: nvme.STT100(), Latency: flash.TypicalNANDLatency(),
		})
		if err != nil {
			t.Fatalf("%v: %v", iface, err)
		}
		if res.PagesPerSec <= 0 || res.Elapsed <= 0 {
			t.Fatalf("%v: empty result %+v", iface, res)
		}
		if res.Pages != len(tr.Writes) {
			t.Fatalf("%v: replayed %d of %d pages", iface, res.Pages, len(tr.Writes))
		}
	}
}

func TestFig9Shape(t *testing.T) {
	tr := testTrace(t)
	rows, err := RunFig9(tr, []int{128 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		b, fp, vp := r.Results[Block], r.Results[BatchFP], r.Results[BatchVP]
		// Batching beats block-at-a-time.
		if fp.PagesPerSec <= b.PagesPerSec {
			t.Fatalf("buffer %d: FP (%.0f) should beat Block (%.0f)", r.BufferBytes, fp.PagesPerSec, b.PagesPerSec)
		}
		// Variable pages beat fixed pages (less data written per page).
		if vp.PagesPerSec <= fp.PagesPerSec {
			t.Fatalf("buffer %d: VP (%.0f) should beat FP (%.0f)", r.BufferBytes, vp.PagesPerSec, fp.PagesPerSec)
		}
		// The paper finds VP ~2x FP; accept a broad band.
		if ra := vp.PagesPerSec / fp.PagesPerSec; ra < 1.3 || ra > 3.5 {
			t.Fatalf("buffer %d: VP/FP ratio %.2f outside the paper's ~2x ballpark", r.BufferBytes, ra)
		}
	}
	// Larger buffers help the batch interface.
	if rows[1].Results[BatchVP].PagesPerSec < rows[0].Results[BatchVP].PagesPerSec {
		t.Fatal("VP throughput should not fall with a larger buffer")
	}
	var buf bytes.Buffer
	PrintFig9(&buf, tr, rows)
	if !strings.Contains(buf.String(), "Fig. 9") {
		t.Fatal("print output malformed")
	}
}

func TestTable2Shape(t *testing.T) {
	tr := testTrace(t)
	res, err := RunTable2(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, fp, vp := res.Results[Block], res.Results[BatchFP], res.Results[BatchVP]
	// Paper: batch ~4.8-8.5x block in pages/sec; VP ~1.76x FP.
	if r := fp.PagesPerSec / b.PagesPerSec; r < 2.5 || r > 20 {
		t.Fatalf("FP/Block ratio %.1f outside Table II ballpark", r)
	}
	if r := vp.PagesPerSec / fp.PagesPerSec; r < 1.3 || r > 3 {
		t.Fatalf("VP/FP ratio %.1f outside Table II ballpark", r)
	}
	// FP moves more bytes for the same pages (padding), so its bandwidth
	// should be at least VP's.
	if fp.MBPerSec < vp.MBPerSec*0.8 {
		t.Fatalf("FP bandwidth (%.0f) suspiciously below VP (%.0f)", fp.MBPerSec, vp.MBPerSec)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, res)
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("print output malformed")
	}
}

func TestYCSBRunBasic(t *testing.T) {
	for _, iface := range Interfaces {
		res, err := RunYCSB(YCSBOptions{
			Interface: iface, Records: 3000, Ops: 4000, CachePct: 25,
			Profile: nvme.STT100(), Latency: flash.TypicalNANDLatency(), Seed: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", iface, err)
		}
		if res.OpsPerSec <= 0 || res.BytesWritten <= 0 {
			t.Fatalf("%v: empty result %+v", iface, res)
		}
	}
}

func TestFig10aShape(t *testing.T) {
	rows, err := RunFig10a(6000, 8000, []int{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	small, large := rows[0], rows[1]
	for _, iface := range Interfaces {
		// Bigger cache, higher throughput.
		if large.Results[iface].OpsPerSec <= small.Results[iface].OpsPerSec {
			t.Fatalf("%v: throughput should grow with cache", iface)
		}
	}
	// Batch outperforms Block at the small cache (the write-heavy regime).
	if small.Results[BatchVP].OpsPerSec <= small.Results[Block].OpsPerSec {
		t.Fatalf("VP (%.0f) should beat Block (%.0f) at 10%% cache",
			small.Results[BatchVP].OpsPerSec, small.Results[Block].OpsPerSec)
	}
	// Fig 10(b): VP writes meaningfully less than FP.
	vpB := small.Results[BatchVP].BytesWritten
	fpB := small.Results[BatchFP].BytesWritten
	if vpB >= fpB {
		t.Fatalf("VP bytes (%d) should be below FP (%d)", vpB, fpB)
	}
	saving := 1 - float64(vpB)/float64(fpB)
	if saving < 0.10 || saving > 0.60 {
		t.Fatalf("VP saving %.0f%% outside the paper's ~30%% ballpark", saving*100)
	}
	var buf bytes.Buffer
	PrintFig10a(&buf, rows)
	PrintFig10b(&buf, rows)
	if !strings.Contains(buf.String(), "Fig. 10(a)") || !strings.Contains(buf.String(), "Fig. 10(b)") {
		t.Fatal("print output malformed")
	}
}

func TestFig10cShape(t *testing.T) {
	res, err := RunFig10c(6000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	declines := map[Interface]float64{}
	for _, iface := range Interfaces {
		off, on := res.Off[iface], res.On[iface]
		if off.OpsPerSec <= 0 || on.OpsPerSec <= 0 {
			t.Fatalf("%v: empty results", iface)
		}
		declines[iface] = 1 - on.OpsPerSec/off.OpsPerSec
	}
	// The paper's key result: Block suffers far more from GC than VP.
	if declines[Block] <= declines[BatchVP] {
		t.Fatalf("Block decline (%.1f%%) should exceed VP (%.1f%%)",
			declines[Block]*100, declines[BatchVP]*100)
	}
	var buf bytes.Buffer
	PrintFig10c(&buf, res)
	if !strings.Contains(buf.String(), "Fig. 10(c)") {
		t.Fatal("print output malformed")
	}
}

func TestFig1Print(t *testing.T) {
	var buf bytes.Buffer
	PrintFig1(&buf)
	out := buf.String()
	if !strings.Contains(out, "crossover") || !strings.Contains(out, "Fig. 1(c)") {
		t.Fatalf("fig1 output malformed:\n%s", out)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := ReplayTPCC(ReplayOptions{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := RunYCSB(YCSBOptions{}); err == nil {
		t.Fatal("zero options accepted")
	}
}

func TestDurabilityExtension(t *testing.T) {
	res, err := RunDurability(5000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockDurable.OpsPerSec <= 0 || res.BatchVP.OpsPerSec <= 0 {
		t.Fatal("empty results")
	}
	// Durable host mapping can only cost throughput, never gain it.
	if res.BlockDurable.OpsPerSec > res.BlockNoDurability.OpsPerSec*1.01 {
		t.Fatalf("durable mapping faster than volatile: %.0f vs %.0f",
			res.BlockDurable.OpsPerSec, res.BlockNoDurability.OpsPerSec)
	}
	var buf bytes.Buffer
	PrintDurability(&buf, res)
	if !strings.Contains(buf.String(), "durability") {
		t.Fatal("print malformed")
	}
}
