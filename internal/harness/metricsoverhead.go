package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"eleos/internal/metrics"
)

// The metricsoverhead experiment measures what the observability layer
// costs on the hot write path: the same concurrent-writer workload runs
// once with a disabled registry (every instrument is a nil-receiver no-op
// and the timing gates skip their time.Now() calls) and once with a live
// registry recording every stage. The device runs with zero emulated NAND
// latency so throughput is CPU-bound — under wall-clock NAND emulation the
// instrumentation cost would hide inside the sleeps.

// OverheadArm is one side of the comparison.
type OverheadArm struct {
	Mode     string        // "disabled" or "enabled"
	Batches  int           // total batches across all writers
	Elapsed  time.Duration // median trial's wall clock
	MBPerSec float64       // median trial's throughput
}

// OverheadResult is the paired measurement.
type OverheadResult struct {
	Writers          int
	BatchesPerWriter int
	Trials           int
	Disabled         OverheadArm
	Enabled          OverheadArm
	OverheadPct      float64 // (disabled - enabled) / disabled * 100
	Instruments      int     // instrument count in the enabled snapshot
}

// RunMetricsOverhead runs both arms trials times, interleaved to spread
// thermal and scheduler noise evenly, reports each arm's median trial,
// and gates on the median of per-trial paired overheads (see
// medianPairedOverhead).
func RunMetricsOverhead(writers, batchesPerWriter, trials int) (OverheadResult, error) {
	res := OverheadResult{Writers: writers, BatchesPerWriter: batchesPerWriter, Trials: trials}
	rows := map[string][]ConcurrentRow{}
	for trial := 0; trial < trials; trial++ {
		// Alternate which arm runs first so slow drift in host capacity
		// lands on both arms evenly across the pairs.
		modes := []string{"disabled", "enabled"}
		if trial%2 == 1 {
			modes[0], modes[1] = modes[1], modes[0]
		}
		for _, mode := range modes {
			reg := metrics.NewDisabled()
			if mode == "enabled" {
				reg = metrics.New()
			}
			row, err := runConcurrentCfg(writers, batchesPerWriter, concurrentOpts{reg: reg})
			if err != nil {
				return res, fmt.Errorf("metrics overhead (%s, trial %d): %w", mode, trial, err)
			}
			rows[mode] = append(rows[mode], row)
			if mode == "enabled" && trial == 0 {
				snap := reg.Snapshot()
				res.Instruments = len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms)
			}
		}
	}
	med := map[string]ConcurrentRow{
		"disabled": medianRow(rows["disabled"]),
		"enabled":  medianRow(rows["enabled"]),
	}
	res.Disabled = OverheadArm{Mode: "disabled", Batches: med["disabled"].Batches,
		Elapsed: med["disabled"].Elapsed, MBPerSec: med["disabled"].MBPerSec}
	res.Enabled = OverheadArm{Mode: "enabled", Batches: med["enabled"].Batches,
		Elapsed: med["enabled"].Elapsed, MBPerSec: med["enabled"].MBPerSec}
	res.OverheadPct = medianPairedOverhead(rows["disabled"], rows["enabled"])
	return res, nil
}

// medianRow returns the trial with the median throughput (the upper
// middle for an even trial count). Shared by both overhead experiments.
func medianRow(rows []ConcurrentRow) ConcurrentRow {
	s := append([]ConcurrentRow(nil), rows...)
	sort.Slice(s, func(i, j int) bool { return s[i].MBPerSec < s[j].MBPerSec })
	return s[len(s)/2]
}

// medianPairedOverhead computes the overhead percentage per trial pair
// (trial i's disabled run against trial i's enabled run — the two ran
// back to back, so minutes-scale host drift cancels inside each pair)
// and returns the median pair. Comparing arm-wide aggregates instead
// lets that drift land asymmetrically on the arms and swing the ratio
// by more than the gate's whole budget on a busy host.
func medianPairedOverhead(disabled, enabled []ConcurrentRow) float64 {
	n := len(disabled)
	if len(enabled) < n {
		n = len(enabled)
	}
	pcts := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if d := disabled[i].MBPerSec; d > 0 {
			pcts = append(pcts, 100*(d-enabled[i].MBPerSec)/d)
		}
	}
	if len(pcts) == 0 {
		return 0
	}
	sort.Float64s(pcts)
	return pcts[len(pcts)/2]
}

// PrintMetricsOverhead renders the comparison.
func PrintMetricsOverhead(w io.Writer, r OverheadResult) {
	fmt.Fprintln(w, "Metrics overhead (CPU-bound concurrent write workload, median of trials)")
	fmt.Fprintf(w, "%10s %9s %12s %10s\n", "mode", "batches", "elapsed", "MB/s")
	for _, arm := range []OverheadArm{r.Disabled, r.Enabled} {
		fmt.Fprintf(w, "%10s %9d %12s %10.2f\n",
			arm.Mode, arm.Batches, arm.Elapsed.Round(time.Millisecond), arm.MBPerSec)
	}
	fmt.Fprintf(w, "enabled registry: %d instruments, throughput overhead %.2f%%\n",
		r.Instruments, r.OverheadPct)
}

// WriteMetricsOverheadJSON emits the result as a BENCH_-style document so
// the observability cost joins the recorded perf trajectory.
func WriteMetricsOverheadJSON(path string, r OverheadResult) error {
	doc := struct {
		Experiment       string  `json:"experiment"`
		Writers          int     `json:"writers"`
		BatchesPerWriter int     `json:"batches_per_writer"`
		PagesPerBatch    int     `json:"pages_per_batch"`
		PageBytes        int     `json:"page_bytes"`
		Trials           int     `json:"trials"`
		DisabledMBPerSec float64 `json:"disabled_mb_per_sec"`
		EnabledMBPerSec  float64 `json:"enabled_mb_per_sec"`
		DisabledMS       float64 `json:"disabled_ms"`
		EnabledMS        float64 `json:"enabled_ms"`
		OverheadPct      float64 `json:"overhead_pct"`
		Instruments      int     `json:"instruments"`
	}{
		Experiment:       "metricsoverhead",
		Writers:          r.Writers,
		BatchesPerWriter: r.BatchesPerWriter,
		PagesPerBatch:    concPagesPerBatch,
		PageBytes:        concPageBytes,
		Trials:           r.Trials,
		DisabledMBPerSec: r.Disabled.MBPerSec,
		EnabledMBPerSec:  r.Enabled.MBPerSec,
		DisabledMS:       float64(r.Disabled.Elapsed.Microseconds()) / 1000,
		EnabledMS:        float64(r.Enabled.Elapsed.Microseconds()) / 1000,
		OverheadPct:      r.OverheadPct,
		Instruments:      r.Instruments,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
