package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"eleos/internal/metrics"
)

// The metricsoverhead experiment measures what the observability layer
// costs on the hot write path: the same concurrent-writer workload runs
// once with a disabled registry (every instrument is a nil-receiver no-op
// and the timing gates skip their time.Now() calls) and once with a live
// registry recording every stage. The device runs with zero emulated NAND
// latency so throughput is CPU-bound — under wall-clock NAND emulation the
// instrumentation cost would hide inside the sleeps.

// OverheadArm is one side of the comparison.
type OverheadArm struct {
	Mode     string        // "disabled" or "enabled"
	Batches  int           // total batches across all writers
	Elapsed  time.Duration // best trial's wall clock
	MBPerSec float64       // best trial's throughput
}

// OverheadResult is the paired measurement.
type OverheadResult struct {
	Writers          int
	BatchesPerWriter int
	Trials           int
	Disabled         OverheadArm
	Enabled          OverheadArm
	OverheadPct      float64 // (disabled - enabled) / disabled * 100
	Instruments      int     // instrument count in the enabled snapshot
}

// RunMetricsOverhead runs both arms trials times, interleaved to spread
// thermal and scheduler noise evenly, and keeps each arm's best trial.
func RunMetricsOverhead(writers, batchesPerWriter, trials int) (OverheadResult, error) {
	res := OverheadResult{Writers: writers, BatchesPerWriter: batchesPerWriter, Trials: trials}
	best := map[string]ConcurrentRow{}
	for trial := 0; trial < trials; trial++ {
		for _, mode := range []string{"disabled", "enabled"} {
			reg := metrics.NewDisabled()
			if mode == "enabled" {
				reg = metrics.New()
			}
			row, err := runConcurrentCfg(writers, batchesPerWriter, concurrentOpts{reg: reg})
			if err != nil {
				return res, fmt.Errorf("metrics overhead (%s, trial %d): %w", mode, trial, err)
			}
			if b, ok := best[mode]; !ok || row.MBPerSec > b.MBPerSec {
				best[mode] = row
			}
			if mode == "enabled" && trial == 0 {
				snap := reg.Snapshot()
				res.Instruments = len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms)
			}
		}
	}
	res.Disabled = OverheadArm{Mode: "disabled", Batches: best["disabled"].Batches,
		Elapsed: best["disabled"].Elapsed, MBPerSec: best["disabled"].MBPerSec}
	res.Enabled = OverheadArm{Mode: "enabled", Batches: best["enabled"].Batches,
		Elapsed: best["enabled"].Elapsed, MBPerSec: best["enabled"].MBPerSec}
	if res.Disabled.MBPerSec > 0 {
		res.OverheadPct = 100 * (res.Disabled.MBPerSec - res.Enabled.MBPerSec) / res.Disabled.MBPerSec
	}
	return res, nil
}

// PrintMetricsOverhead renders the comparison.
func PrintMetricsOverhead(w io.Writer, r OverheadResult) {
	fmt.Fprintln(w, "Metrics overhead (CPU-bound concurrent write workload, best of trials)")
	fmt.Fprintf(w, "%10s %9s %12s %10s\n", "mode", "batches", "elapsed", "MB/s")
	for _, arm := range []OverheadArm{r.Disabled, r.Enabled} {
		fmt.Fprintf(w, "%10s %9d %12s %10.2f\n",
			arm.Mode, arm.Batches, arm.Elapsed.Round(time.Millisecond), arm.MBPerSec)
	}
	fmt.Fprintf(w, "enabled registry: %d instruments, throughput overhead %.2f%%\n",
		r.Instruments, r.OverheadPct)
}

// WriteMetricsOverheadJSON emits the result as a BENCH_-style document so
// the observability cost joins the recorded perf trajectory.
func WriteMetricsOverheadJSON(path string, r OverheadResult) error {
	doc := struct {
		Experiment       string  `json:"experiment"`
		Writers          int     `json:"writers"`
		BatchesPerWriter int     `json:"batches_per_writer"`
		PagesPerBatch    int     `json:"pages_per_batch"`
		PageBytes        int     `json:"page_bytes"`
		Trials           int     `json:"trials"`
		DisabledMBPerSec float64 `json:"disabled_mb_per_sec"`
		EnabledMBPerSec  float64 `json:"enabled_mb_per_sec"`
		DisabledMS       float64 `json:"disabled_ms"`
		EnabledMS        float64 `json:"enabled_ms"`
		OverheadPct      float64 `json:"overhead_pct"`
		Instruments      int     `json:"instruments"`
	}{
		Experiment:       "metricsoverhead",
		Writers:          r.Writers,
		BatchesPerWriter: r.BatchesPerWriter,
		PagesPerBatch:    concPagesPerBatch,
		PageBytes:        concPageBytes,
		Trials:           r.Trials,
		DisabledMBPerSec: r.Disabled.MBPerSec,
		EnabledMBPerSec:  r.Enabled.MBPerSec,
		DisabledMS:       float64(r.Disabled.Elapsed.Microseconds()) / 1000,
		EnabledMS:        float64(r.Enabled.Elapsed.Microseconds()) / 1000,
		OverheadPct:      r.OverheadPct,
		Instruments:      r.Instruments,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
