package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"eleos/internal/metrics"
	"eleos/internal/trace"
)

// The traceoverhead experiment prices the always-on flight recorder the
// same way metricsoverhead prices the registry: the identical CPU-bound
// concurrent-writer workload runs once with a disabled recorder (every
// Emit/Span is a no-op and the timing gates skip their time.Now() calls)
// and once with a live DefaultSize ring recording every write-path span.
// Both arms run with metrics disabled so the measured delta is the
// recorder's alone. The recorder's claim to "always on" rests on this
// number staying small (~2-3% on a quiet host; CI backstops the
// paired-median at 15%, since shared runners drift by more than that
// cost, and pins the per-event cost with TestTraceEmitAllocFree).

// RunTraceOverhead runs both arms trials times, interleaved to spread
// thermal and scheduler noise evenly, reports each arm's median trial,
// and gates on the median of per-trial paired overheads (see
// medianPairedOverhead — aggregate-vs-aggregate statistics let host
// drift swing the ratio).
func RunTraceOverhead(writers, batchesPerWriter, trials int) (OverheadResult, error) {
	res := OverheadResult{Writers: writers, BatchesPerWriter: batchesPerWriter, Trials: trials}
	rows := map[string][]ConcurrentRow{}
	for trial := 0; trial < trials; trial++ {
		// Alternate which arm runs first so slow drift in host capacity
		// lands on both arms evenly across the pairs.
		modes := []string{"disabled", "enabled"}
		if trial%2 == 1 {
			modes[0], modes[1] = modes[1], modes[0]
		}
		for _, mode := range modes {
			trc := trace.NewDisabled()
			if mode == "enabled" {
				trc = trace.New(trace.DefaultSize)
			}
			row, err := runConcurrentCfg(writers, batchesPerWriter, concurrentOpts{
				reg: metrics.NewDisabled(), trc: trc,
			})
			if err != nil {
				return res, fmt.Errorf("trace overhead (%s, trial %d): %w", mode, trial, err)
			}
			rows[mode] = append(rows[mode], row)
			if mode == "enabled" && trial == 0 {
				// Reuse the Instruments slot for the ring capacity, the
				// enabled arm's one size knob.
				res.Instruments = trc.Size()
			}
		}
	}
	med := map[string]ConcurrentRow{
		"disabled": medianRow(rows["disabled"]),
		"enabled":  medianRow(rows["enabled"]),
	}
	res.Disabled = OverheadArm{Mode: "disabled", Batches: med["disabled"].Batches,
		Elapsed: med["disabled"].Elapsed, MBPerSec: med["disabled"].MBPerSec}
	res.Enabled = OverheadArm{Mode: "enabled", Batches: med["enabled"].Batches,
		Elapsed: med["enabled"].Elapsed, MBPerSec: med["enabled"].MBPerSec}
	res.OverheadPct = medianPairedOverhead(rows["disabled"], rows["enabled"])
	return res, nil
}

// PrintTraceOverhead renders the comparison.
func PrintTraceOverhead(w io.Writer, r OverheadResult) {
	fmt.Fprintln(w, "Trace overhead (CPU-bound concurrent write workload, median of trials)")
	fmt.Fprintf(w, "%10s %9s %12s %10s\n", "mode", "batches", "elapsed", "MB/s")
	for _, arm := range []OverheadArm{r.Disabled, r.Enabled} {
		fmt.Fprintf(w, "%10s %9d %12s %10.2f\n",
			arm.Mode, arm.Batches, arm.Elapsed.Round(time.Millisecond), arm.MBPerSec)
	}
	fmt.Fprintf(w, "enabled recorder: %d-event ring, throughput overhead %.2f%%\n",
		r.Instruments, r.OverheadPct)
}

// WriteTraceOverheadJSON emits the result as a BENCH_-style document so
// the flight recorder's cost joins the recorded perf trajectory.
func WriteTraceOverheadJSON(path string, r OverheadResult) error {
	doc := struct {
		Experiment       string  `json:"experiment"`
		Writers          int     `json:"writers"`
		BatchesPerWriter int     `json:"batches_per_writer"`
		PagesPerBatch    int     `json:"pages_per_batch"`
		PageBytes        int     `json:"page_bytes"`
		Trials           int     `json:"trials"`
		RingEvents       int     `json:"ring_events"`
		DisabledMBPerSec float64 `json:"disabled_mb_per_sec"`
		EnabledMBPerSec  float64 `json:"enabled_mb_per_sec"`
		DisabledMS       float64 `json:"disabled_ms"`
		EnabledMS        float64 `json:"enabled_ms"`
		OverheadPct      float64 `json:"overhead_pct"`
	}{
		Experiment:       "traceoverhead",
		Writers:          r.Writers,
		BatchesPerWriter: r.BatchesPerWriter,
		PagesPerBatch:    concPagesPerBatch,
		PageBytes:        concPageBytes,
		Trials:           r.Trials,
		RingEvents:       r.Instruments,
		DisabledMBPerSec: r.Disabled.MBPerSec,
		EnabledMBPerSec:  r.Enabled.MBPerSec,
		DisabledMS:       float64(r.Disabled.Elapsed.Microseconds()) / 1000,
		EnabledMS:        float64(r.Enabled.Elapsed.Microseconds()) / 1000,
		OverheadPct:      r.OverheadPct,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
