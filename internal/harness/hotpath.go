package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/server"
)

// The hotpath experiment prices the allocation-free network write path:
// the same CPU-bound loopback workload (zero-latency NAND, so framing,
// copies, allocations and the WAL are all that's left) runs against
// three server configurations —
//
//   - copy:      the legacy request loop (per-frame allocation, copying
//     batch decode, copying response writes), kept behind
//     server.Config.LegacyCopyPath exactly for this comparison;
//   - pooled:    the pooled zero-copy path (refcounted request frames,
//     borrowed page views, vectored replies);
//   - coalesced: the pooled path plus server-side batch coalescing, the
//     eligibility threshold raised so this workload's flushes merge.
//
// Reported next to throughput is the process-wide allocation rate per
// flush (runtime.MemStats deltas — client and server share the
// process, so the number is a before/after story, not a per-layer
// claim; the per-call zero-alloc claims are pinned by
// testing.AllocsPerRun gates in netproto). The CI gate is the
// pooled-vs-copy throughput ratio: both arms run in the same process on
// the same machine, so the ratio survives hardware changes that
// absolute MB/s would not.

const (
	hotClients       = 8 // enough concurrent flushes for deep coalescing rounds
	hotPagesPerBatch = 8
	hotPageBytes     = 16384 // 128 KB wire batches: big enough that copies dominate
	hotWorkingSet    = 1000
)

// HotpathArm is one configuration's measurement.
type HotpathArm struct {
	Mode           string
	Batches        int
	Elapsed        time.Duration
	MBPerSec       float64
	AllocsPerFlush float64 // process-wide heap objects per flush
	BytesPerFlush  float64 // process-wide heap bytes per flush
	GroupWrites    int64   // coalesced controller actions (coalesced arm)
}

// HotpathResult is the three-arm comparison.
type HotpathResult struct {
	Clients          int
	BatchesPerClient int
	Trials           int
	Copy             HotpathArm
	Pooled           HotpathArm
	Coalesced        HotpathArm
	SpeedupPooled    float64 // pooled vs copy throughput
	SpeedupCoalesced float64 // coalesced vs copy throughput
}

// RunHotpath runs all arms trials times, interleaved so thermal and
// scheduler noise spreads evenly, and keeps each arm's best-throughput
// trial.
func RunHotpath(batchesPerClient, trials int) (HotpathResult, error) {
	res := HotpathResult{Clients: hotClients, BatchesPerClient: batchesPerClient, Trials: trials}
	arms := []struct {
		mode string
		cfg  server.Config
	}{
		{"copy", server.Config{LegacyCopyPath: true, MaxConns: hotClients + 4}},
		{"pooled", server.Config{MaxConns: hotClients + 4}},
		{"coalesced", server.Config{MaxConns: hotClients + 4, Coalesce: server.CoalesceConfig{
			Enabled:        true,
			Window:         200 * time.Microsecond,
			MaxFlushes:     hotClients,
			MaxBytes:       4 << 20,
			ThresholdBytes: 1 << 20, // admit this workload's 128 KB flushes
		}}},
	}
	best := map[string]HotpathArm{}
	for trial := 0; trial < trials; trial++ {
		for _, arm := range arms {
			row, err := runHotpathOne(arm.mode, arm.cfg, batchesPerClient)
			if err != nil {
				return res, fmt.Errorf("hotpath (%s, trial %d): %w", arm.mode, trial, err)
			}
			if b, ok := best[arm.mode]; !ok || row.MBPerSec > b.MBPerSec {
				best[arm.mode] = row
			}
		}
	}
	res.Copy, res.Pooled, res.Coalesced = best["copy"], best["pooled"], best["coalesced"]
	if res.Copy.MBPerSec > 0 {
		res.SpeedupPooled = res.Pooled.MBPerSec / res.Copy.MBPerSec
		res.SpeedupCoalesced = res.Coalesced.MBPerSec / res.Copy.MBPerSec
	}
	return res, nil
}

func runHotpathOne(mode string, scfg server.Config, batchesPerClient int) (HotpathArm, error) {
	geo := flash.Geometry{
		Channels: 8, EBlocksPerChannel: 64,
		EBlockBytes: 4 << 20, WBlockBytes: 64 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, flash.Latency{}) // zero latency: CPU-bound
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 1 << 30 // keep checkpoints out of the measurement
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		return HotpathArm{}, err
	}
	srv := server.New(ctl, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return HotpathArm{}, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()

	data := make([]byte, hotPageBytes)
	for i := range data {
		data[i] = byte(i)
	}
	errs := make(chan error, hotClients)
	var wg sync.WaitGroup

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for w := 0; w < hotClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(ln.Addr().String(), client.Options{Seed: int64(w + 1)})
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", w, err)
				return
			}
			defer cl.Close()
			sess, err := cl.NewSession()
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", w, err)
				return
			}
			base := uint64(w+1) * 1_000_000
			batch := make([]core.LPage, hotPagesPerBatch)
			for i := 0; i < batchesPerClient; i++ {
				for j := range batch {
					lpid := base + uint64((i*hotPagesPerBatch+j)%hotWorkingSet)
					batch[j] = core.LPage{LPID: addr.LPID(lpid), Data: data}
				}
				if err := sess.Flush(batch); err != nil {
					errs <- fmt.Errorf("client %d batch %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	close(errs)
	for err := range errs {
		return HotpathArm{}, err
	}

	total := hotClients * batchesPerClient
	bytes := float64(total) * hotPagesPerBatch * hotPageBytes
	return HotpathArm{
		Mode:           mode,
		Batches:        total,
		Elapsed:        elapsed,
		MBPerSec:       bytes / (1 << 20) / elapsed.Seconds(),
		AllocsPerFlush: float64(m1.Mallocs-m0.Mallocs) / float64(total),
		BytesPerFlush:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(total),
		GroupWrites:    ctl.Stats().GroupWrites,
	}, nil
}

// PrintHotpath renders the comparison.
func PrintHotpath(w io.Writer, r HotpathResult) {
	fmt.Fprintln(w, "Network hot path (CPU-bound loopback TCP, best of trials; allocs are process-wide per flush)")
	fmt.Fprintf(w, "%10s %9s %12s %10s %9s %13s %13s %8s\n",
		"mode", "batches", "elapsed", "MB/s", "speedup", "allocs/flush", "KB/flush", "groups")
	for _, arm := range []HotpathArm{r.Copy, r.Pooled, r.Coalesced} {
		speedup := 1.0
		if r.Copy.MBPerSec > 0 {
			speedup = arm.MBPerSec / r.Copy.MBPerSec
		}
		fmt.Fprintf(w, "%10s %9d %12s %10.2f %8.2fx %13.1f %13.1f %8d\n",
			arm.Mode, arm.Batches, arm.Elapsed.Round(time.Millisecond), arm.MBPerSec,
			speedup, arm.AllocsPerFlush, arm.BytesPerFlush/1024, arm.GroupWrites)
	}
	fmt.Fprintf(w, "pooled path speedup %.2fx, with coalescing %.2fx (flush = %d pages x %d B)\n",
		r.SpeedupPooled, r.SpeedupCoalesced, hotPagesPerBatch, hotPageBytes)
}

// WriteHotpathJSON emits the result as a BENCH_-style document so the
// hot-path rework joins the recorded perf trajectory.
func WriteHotpathJSON(path string, r HotpathResult) error {
	type armJSON struct {
		Mode           string  `json:"mode"`
		Batches        int     `json:"batches"`
		ElapsedMS      float64 `json:"elapsed_ms"`
		MBPerSec       float64 `json:"mb_per_sec"`
		AllocsPerFlush float64 `json:"allocs_per_flush"`
		BytesPerFlush  float64 `json:"bytes_alloc_per_flush"`
		GroupWrites    int64   `json:"group_writes"`
	}
	arm := func(a HotpathArm) armJSON {
		return armJSON{
			Mode:           a.Mode,
			Batches:        a.Batches,
			ElapsedMS:      float64(a.Elapsed.Microseconds()) / 1000,
			MBPerSec:       a.MBPerSec,
			AllocsPerFlush: a.AllocsPerFlush,
			BytesPerFlush:  a.BytesPerFlush,
			GroupWrites:    a.GroupWrites,
		}
	}
	doc := struct {
		Experiment       string    `json:"experiment"`
		Transport        string    `json:"transport"`
		Clients          int       `json:"clients"`
		BatchesPerClient int       `json:"batches_per_client"`
		PagesPerBatch    int       `json:"pages_per_batch"`
		PageBytes        int       `json:"page_bytes"`
		Trials           int       `json:"trials"`
		Arms             []armJSON `json:"arms"`
		SpeedupPooled    float64   `json:"speedup_pooled_vs_copy"`
		SpeedupCoalesced float64   `json:"speedup_coalesced_vs_copy"`
	}{
		Experiment:       "hotpath",
		Transport:        "tcp-loopback",
		Clients:          r.Clients,
		BatchesPerClient: r.BatchesPerClient,
		PagesPerBatch:    hotPagesPerBatch,
		PageBytes:        hotPageBytes,
		Trials:           r.Trials,
		Arms:             []armJSON{arm(r.Copy), arm(r.Pooled), arm(r.Coalesced)},
		SpeedupPooled:    r.SpeedupPooled,
		SpeedupCoalesced: r.SpeedupCoalesced,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
