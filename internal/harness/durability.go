package harness

import (
	"fmt"
	"io"

	"eleos/internal/flash"
	"eleos/internal/nvme"
)

// DurabilityResult compares the cost of making the page mapping durable:
// host-based log structuring must checkpoint its own mapping table into
// the log (§I's "the latest location … must be durable across system
// crashes"), while ELEOS provides durability inside the controller for
// free from the host's perspective.
type DurabilityResult struct {
	BlockNoDurability *YCSBResult // Block, volatile host mapping (Fig. 10(a) setting)
	BlockDurable      *YCSBResult // Block, mapping checkpointed into the log
	BatchVP           *YCSBResult // ELEOS: durability built in
}

// RunDurability runs the extension experiment at the given scale.
func RunDurability(records uint64, ops int) (*DurabilityResult, error) {
	run := func(iface Interface, durable bool) (*YCSBResult, error) {
		return RunYCSB(YCSBOptions{
			Interface: iface, Records: records, Ops: ops, CachePct: 25,
			Profile: nvme.STT100(), Latency: flash.TypicalNANDLatency(),
			HostDurability: durable, Seed: 1,
		})
	}
	out := &DurabilityResult{}
	var err error
	if out.BlockNoDurability, err = run(Block, false); err != nil {
		return nil, err
	}
	if out.BlockDurable, err = run(Block, true); err != nil {
		return nil, err
	}
	if out.BatchVP, err = run(BatchVP, false); err != nil {
		return nil, err
	}
	return out, nil
}

// PrintDurability renders the extension experiment.
func PrintDurability(w io.Writer, r *DurabilityResult) {
	fmt.Fprintf(w, "Extension — host durability overhead (§I): checkpointing the host mapping into the log\n\n")
	fmt.Fprintf(w, "%-28s %12s %14s\n", "configuration", "ops/sec", "bytes to SSD")
	row := func(name string, res *YCSBResult) {
		fmt.Fprintf(w, "%-28s %12.0f %11.1f MB\n", name, res.OpsPerSec, float64(res.BytesWritten)/(1<<20))
	}
	row("Block, volatile mapping", r.BlockNoDurability)
	row("Block, durable mapping", r.BlockDurable)
	row("Batch(VP) — durable by FTL", r.BatchVP)
	overhead := 0.0
	if r.BlockNoDurability.OpsPerSec > 0 {
		overhead = 100 * (1 - r.BlockDurable.OpsPerSec/r.BlockNoDurability.OpsPerSec)
	}
	fmt.Fprintf(w, "\nhost mapping durability costs Block %.1f%% throughput here; ELEOS pays nothing extra\n", overhead)
	fmt.Fprintf(w, "(its FTL mapping is durable via in-controller logging, §VIII). With large segments the\n")
	fmt.Fprintf(w, "checkpoint I/O amortises well — the dominant host-side cost is GC (Fig. 10(c)).\n")
}
