package harness

import "testing"

// TestFairnessSmoke runs a miniature three-arm fairness comparison —
// every arm must complete, produce latency profiles, and the qos arm
// must show the noisy tenant actually passing through admission. The
// inflation bound itself is a wall-clock truth the CI gate checks at
// full scale; here only sanity is asserted.
func TestFairnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP experiment")
	}
	res, err := RunFairness(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SoloP99 <= 0 || res.QoSP99 <= 0 || res.NoQoSP99 <= 0 {
		t.Fatalf("missing latency profile: %+v", res)
	}
	if res.QoSInflation <= 0 || res.NoQoSInflation <= 0 {
		t.Fatalf("inflation ratios not computed: %+v", res)
	}
	if res.NoisyAdmitted == 0 {
		t.Fatal("qos arm admitted no noisy-tenant bytes — admission never ran")
	}
}
