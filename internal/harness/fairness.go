package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/qos"
	"eleos/internal/server"
)

// The fairness experiment measures what per-tenant QoS admission buys a
// well-behaved tenant under a noisy neighbor (DESIGN.md §10). Three arms
// over loopback TCP, each on a fresh device:
//
//   - solo:  the quiet tenant alone — the baseline its latency is judged
//     against.
//   - qos:   the quiet tenant racing aggressor connections that stream
//     large batches under one "noisy" tenant tag, with the server's
//     per-tenant admission enabled: the noisy tenant is rate-shaped and
//     budget-capped, the quiet tenant is unlimited.
//   - noqos: the identical mixed load with admission disabled — the
//     control arm showing the interference QoS removes.
//
// The headline number is the quiet tenant's p99 flush latency per arm;
// the CI gate bounds qos-arm p99 as a multiple of solo p99. The NAND
// emulates channel occupancy in real time (wall scale 1), so the noisy
// tenant really does queue the device the way a tenant does in
// production — without QoS the quiet tenant's flushes sit behind tens of
// 64 KB programs, with QoS the noisy tenant waits at the door instead.

// FairnessResult holds the three arms' quiet-tenant latency profiles.
type FairnessResult struct {
	QuietBatches int
	Aggressors   int

	SoloP50, SoloP95, SoloP99    time.Duration
	QoSP50, QoSP95, QoSP99       time.Duration
	NoQoSP50, NoQoSP95, NoQoSP99 time.Duration

	// P99 inflation of each contended arm over solo.
	QoSInflation   float64
	NoQoSInflation float64

	// NoisyThrottled counts the qos arm's admission throttle events —
	// nonzero proves the brake actually engaged.
	NoisyThrottled int64
	// NoisyAdmitted is the qos arm's noisy-tenant admitted bytes.
	NoisyAdmitted int64
}

const (
	fairQuietTenant = "quiet"
	fairNoisyTenant = "noisy"

	fairQuietPages     = 2
	fairQuietPageBytes = 1536
	fairNoisyPages     = 16
	fairNoisyPageBytes = 4096

	// Noisy-tenant limits for the qos arm: ~2 MB/s sustained across all
	// aggressor connections (the bucket is per tenant, not per
	// connection) with a budget of four batches in flight.
	fairNoisyRate   = 2 << 20
	fairNoisyBurst  = 128 << 10
	fairNoisyBudget = 256 << 10
)

// RunFairness executes the three arms and derives the inflation ratios.
func RunFairness(quietBatches, aggressors int) (FairnessResult, error) {
	res := FairnessResult{QuietBatches: quietBatches, Aggressors: aggressors}

	solo, _, err := runFairnessArm(quietBatches, 0, false)
	if err != nil {
		return res, fmt.Errorf("solo arm: %w", err)
	}
	res.SoloP50, res.SoloP95, res.SoloP99 = latProfile(solo)

	withQoS, noisy, err := runFairnessArm(quietBatches, aggressors, true)
	if err != nil {
		return res, fmt.Errorf("qos arm: %w", err)
	}
	res.QoSP50, res.QoSP95, res.QoSP99 = latProfile(withQoS)
	res.NoisyThrottled = noisy.ThrottledCount
	res.NoisyAdmitted = noisy.AdmittedBytes

	without, _, err := runFairnessArm(quietBatches, aggressors, false)
	if err != nil {
		return res, fmt.Errorf("noqos arm: %w", err)
	}
	res.NoQoSP50, res.NoQoSP95, res.NoQoSP99 = latProfile(without)

	if res.SoloP99 > 0 {
		res.QoSInflation = float64(res.QoSP99) / float64(res.SoloP99)
		res.NoQoSInflation = float64(res.NoQoSP99) / float64(res.SoloP99)
	}
	return res, nil
}

func latProfile(lats []time.Duration) (p50, p95, p99 time.Duration) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return percentile(lats, 50), percentile(lats, 95), percentile(lats, 99)
}

// runFairnessArm serves a fresh device over loopback TCP and returns the
// quiet tenant's per-flush latencies, plus the noisy tenant's admission
// stats when QoS ran.
func runFairnessArm(quietBatches, aggressors int, enableQoS bool) ([]time.Duration, qos.TenantStats, error) {
	geo := flash.Geometry{
		Channels: 8, EBlocksPerChannel: 64,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, flash.TypicalNANDLatency())
	dev.SetWallLatencyScale(1)
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 16 << 20
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		return nil, qos.TenantStats{}, err
	}
	scfg := server.Config{MaxConns: aggressors + 4}
	if enableQoS {
		scfg.QoS = qos.Config{
			Enabled: true,
			Tenants: map[string]qos.Limits{
				fairNoisyTenant: {
					RateBytesPerSec:  fairNoisyRate,
					BurstBytes:       fairNoisyBurst,
					MaxInflightBytes: fairNoisyBudget,
				},
			},
		}
	}
	srv := server.New(ctl, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, qos.TenantStats{}, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()

	// Aggressors: closed-loop large-batch writers under the noisy tenant,
	// running until the quiet tenant finishes its batches.
	var stop atomic.Bool
	noisyData := make([]byte, fairNoisyPageBytes)
	errs := make(chan error, aggressors+1)
	var wg sync.WaitGroup
	for a := 0; a < aggressors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			cl, err := client.Dial(ln.Addr().String(), client.Options{Seed: int64(a + 100)})
			if err != nil {
				errs <- fmt.Errorf("aggressor %d: %w", a, err)
				return
			}
			defer cl.Close()
			sess, err := cl.NewSessionTenant(fairNoisyTenant, 0)
			if err != nil {
				errs <- fmt.Errorf("aggressor %d: %w", a, err)
				return
			}
			base := uint64(a+1) * 10_000_000
			batch := make([]core.LPage, fairNoisyPages)
			for i := 0; !stop.Load(); i++ {
				for j := range batch {
					lpid := base + uint64((i*fairNoisyPages+j)%4000)
					batch[j] = core.LPage{LPID: addr.LPID(lpid), Data: noisyData}
				}
				if err := sess.Flush(batch); err != nil {
					if !stop.Load() {
						errs <- fmt.Errorf("aggressor %d: %w", a, err)
					}
					return
				}
			}
		}(a)
	}

	// Quiet tenant: one connection, small paced batches, at the highest
	// priority (head of its own tenant queue; it shares no budget with
	// the noisy tenant, so under QoS its only contention is real device
	// time).
	lats := make([]time.Duration, 0, quietBatches)
	quietData := make([]byte, fairQuietPageBytes)
	func() {
		defer stop.Store(true)
		cl, err := client.Dial(ln.Addr().String(), client.Options{Seed: 1})
		if err != nil {
			errs <- fmt.Errorf("quiet: %w", err)
			return
		}
		defer cl.Close()
		sess, err := cl.NewSessionTenant(fairQuietTenant, 200)
		if err != nil {
			errs <- fmt.Errorf("quiet: %w", err)
			return
		}
		batch := make([]core.LPage, fairQuietPages)
		for i := 0; i < quietBatches; i++ {
			for j := range batch {
				batch[j] = core.LPage{LPID: addr.LPID(uint64(1_000_000 + (i*fairQuietPages+j)%500)), Data: quietData}
			}
			t0 := time.Now()
			if err := sess.Flush(batch); err != nil {
				errs <- fmt.Errorf("quiet batch %d: %w", i, err)
				return
			}
			lats = append(lats, time.Since(t0))
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, qos.TenantStats{}, err
	}

	var noisy qos.TenantStats
	if enableQoS {
		noisy = srv.QoSStats()[fairNoisyTenant]
	}
	return lats, noisy, nil
}

// PrintFairness renders the three-arm comparison.
func PrintFairness(w io.Writer, r FairnessResult) {
	fmt.Fprintln(w, "Multi-tenant fairness (loopback TCP, quiet tenant vs noisy neighbor, wall clock)")
	fmt.Fprintf(w, "quiet: %d batches of %d×%dB   noisy: %d aggressors, %d×%dB batches, qos rate %d B/s budget %d B\n",
		r.QuietBatches, fairQuietPages, fairQuietPageBytes,
		r.Aggressors, fairNoisyPages, fairNoisyPageBytes, int64(fairNoisyRate), int64(fairNoisyBudget))
	fmt.Fprintf(w, "%10s %10s %10s %10s %12s\n", "arm", "p50", "p95", "p99", "p99 vs solo")
	row := func(name string, p50, p95, p99 time.Duration, inf float64) {
		rel := "—"
		if inf > 0 {
			rel = fmt.Sprintf("%.2fx", inf)
		}
		fmt.Fprintf(w, "%10s %10s %10s %10s %12s\n", name,
			p50.Round(10*time.Microsecond), p95.Round(10*time.Microsecond),
			p99.Round(10*time.Microsecond), rel)
	}
	row("solo", r.SoloP50, r.SoloP95, r.SoloP99, 0)
	row("qos", r.QoSP50, r.QoSP95, r.QoSP99, r.QoSInflation)
	row("no-qos", r.NoQoSP50, r.NoQoSP95, r.NoQoSP99, r.NoQoSInflation)
	fmt.Fprintf(w, "noisy tenant under qos: %d bytes admitted, throttled %d times\n",
		r.NoisyAdmitted, r.NoisyThrottled)
}

// WriteFairnessJSON records the result as BENCH_fairness.json for the
// perf trajectory (and the EXPERIMENTS.md fairness section).
func WriteFairnessJSON(path string, r FairnessResult) error {
	doc := struct {
		Experiment     string  `json:"experiment"`
		Transport      string  `json:"transport"`
		QuietBatches   int     `json:"quiet_batches"`
		Aggressors     int     `json:"aggressors"`
		NoisyRateBPS   int64   `json:"noisy_rate_bytes_per_sec"`
		NoisyBudget    int64   `json:"noisy_budget_bytes"`
		SoloP50Micros  int64   `json:"solo_p50_us"`
		SoloP95Micros  int64   `json:"solo_p95_us"`
		SoloP99Micros  int64   `json:"solo_p99_us"`
		QoSP50Micros   int64   `json:"qos_p50_us"`
		QoSP95Micros   int64   `json:"qos_p95_us"`
		QoSP99Micros   int64   `json:"qos_p99_us"`
		NoQoSP50us     int64   `json:"noqos_p50_us"`
		NoQoSP95us     int64   `json:"noqos_p95_us"`
		NoQoSP99us     int64   `json:"noqos_p99_us"`
		QoSInflation   float64 `json:"qos_p99_inflation"`
		NoQoSInflation float64 `json:"noqos_p99_inflation"`
		NoisyThrottled int64   `json:"noisy_throttled"`
		NoisyAdmitted  int64   `json:"noisy_admitted_bytes"`
	}{
		Experiment:     "fairness",
		Transport:      "tcp-loopback",
		QuietBatches:   r.QuietBatches,
		Aggressors:     r.Aggressors,
		NoisyRateBPS:   fairNoisyRate,
		NoisyBudget:    fairNoisyBudget,
		SoloP50Micros:  r.SoloP50.Microseconds(),
		SoloP95Micros:  r.SoloP95.Microseconds(),
		SoloP99Micros:  r.SoloP99.Microseconds(),
		QoSP50Micros:   r.QoSP50.Microseconds(),
		QoSP95Micros:   r.QoSP95.Microseconds(),
		QoSP99Micros:   r.QoSP99.Microseconds(),
		NoQoSP50us:     r.NoQoSP50.Microseconds(),
		NoQoSP95us:     r.NoQoSP95.Microseconds(),
		NoQoSP99us:     r.NoQoSP99.Microseconds(),
		QoSInflation:   r.QoSInflation,
		NoQoSInflation: r.NoQoSInflation,
		NoisyThrottled: r.NoisyThrottled,
		NoisyAdmitted:  r.NoisyAdmitted,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
