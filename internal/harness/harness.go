// Package harness builds and runs the paper's experiments (§IX): the
// TPC-C trace replay behind Fig. 9 and Table II, the Bw-tree YCSB runs
// behind Fig. 10(a)–(c), and the Fig. 1 cost model. The same runners back
// cmd/benchrunner and the repository's testing.B benchmarks.
package harness

import (
	"errors"
	"fmt"
	"time"

	"eleos/internal/addr"
	"eleos/internal/blockftl"
	"eleos/internal/bwtree"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/lsstore"
	"eleos/internal/nvme"
	"eleos/internal/tpcc"
	"eleos/internal/ycsb"
)

// Interface selects the storage interface under test.
type Interface int

const (
	// Block: block-at-a-time over a conventional FTL.
	Block Interface = iota
	// BatchFP: the batched interface with fixed 4 KB pages (prior work).
	BatchFP
	// BatchVP: ELEOS — batched writes of variable-size pages.
	BatchVP
)

func (i Interface) String() string {
	switch i {
	case Block:
		return "Block"
	case BatchFP:
		return "Batch(FP)"
	case BatchVP:
		return "Batch(VP)"
	default:
		return fmt.Sprintf("iface(%d)", int(i))
	}
}

// Interfaces lists all three in presentation order.
var Interfaces = []Interface{Block, BatchFP, BatchVP}

// benchGeometry builds a device geometry of roughly capacity bytes with
// paper-style block sizes scaled for laptop-size experiments. Small
// capacities get smaller EBLOCKs so every channel still holds enough
// EBLOCKs for the open streams (user, GC buckets, log) plus a healthy
// used population for GC to work over.
func benchGeometry(capacity int64) flash.Geometry {
	g := flash.Geometry{
		Channels:    8,
		EBlockBytes: 1 << 20, // 1 MB EBLOCKs (scaled from the paper's 8 MB)
		WBlockBytes: 32 << 10,
		RBlockBytes: 4 << 10,
	}
	if capacity < 256<<20 {
		g.EBlockBytes = 256 << 10
	}
	per := capacity / int64(g.Channels) / int64(g.EBlockBytes)
	if per < 24 {
		per = 24
	}
	g.EBlocksPerChannel = int(per)
	return g
}

// --- TPC-C replay (Fig. 9, Table II) ---------------------------------------

// ReplayResult is one interface's measurement for one buffer size.
type ReplayResult struct {
	Interface   Interface
	BufferBytes int
	Pages       int
	BytesToSSD  int64
	Elapsed     time.Duration
	PagesPerSec float64
	MBPerSec    float64
	Bottleneck  string
}

// ReplayOptions configures a TPC-C trace replay.
type ReplayOptions struct {
	Trace       *tpcc.Trace
	Interface   Interface
	BufferBytes int // batch write-buffer size (ignored for Block)
	Profile     nvme.CostProfile
	Latency     flash.Latency
	Capacity    int64 // device capacity; 0 = auto
}

// ReplayTPCC replays the trace's page writes through one interface and
// measures virtual write throughput.
func ReplayTPCC(o ReplayOptions) (*ReplayResult, error) {
	if o.Trace == nil || len(o.Trace.Writes) == 0 {
		return nil, errors.New("harness: empty trace")
	}
	if o.Capacity == 0 {
		o.Capacity = 8 * o.Trace.TotalBytes()
		if min := int64(256 << 20); o.Capacity < min {
			o.Capacity = min
		}
	}
	geo := benchGeometry(o.Capacity)
	dev, err := flash.NewDevice(geo, o.Latency)
	if err != nil {
		return nil, err
	}
	meter := nvme.NewMeter(o.Profile)
	res := &ReplayResult{Interface: o.Interface, BufferBytes: o.BufferBytes, Pages: len(o.Trace.Writes)}
	payload := make([]byte, o.Trace.PageBytes)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	switch o.Interface {
	case Block:
		// A conventional engine writes each page to its fixed 4 KB home
		// block — compression cannot shrink the I/O below a block.
		maxPID := uint64(0)
		for _, w := range o.Trace.Writes {
			if w.PID > maxPID {
				maxPID = w.PID
			}
		}
		ftl, err := blockftl.New(dev, o.Trace.PageBytes, int(maxPID)+1, 0.1)
		if err != nil {
			return nil, err
		}
		for _, w := range o.Trace.Writes {
			if err := ftl.WriteBlock(int(w.PID), payload[:min(w.Size, o.Trace.PageBytes)]); err != nil {
				return nil, err
			}
			meter.WriteCommand(o.Trace.PageBytes, 1, 1)
			res.BytesToSSD += int64(o.Trace.PageBytes)
		}
	case BatchFP, BatchVP:
		cfg := core.DefaultConfig()
		cfg.AutoCheckpointLogBytes = 8 << 20
		ctl, err := core.Format(dev, cfg)
		if err != nil {
			return nil, err
		}
		var batch []core.LPage
		batchBytes := 0
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			if err := ctl.WriteBatch(0, 0, batch); err != nil {
				return err
			}
			meter.WriteCommand(batchBytes, len(batch), 1)
			res.BytesToSSD += int64(batchBytes)
			batch = nil
			batchBytes = 0
			return nil
		}
		for _, w := range o.Trace.Writes {
			size := w.Size
			if o.Interface == BatchFP {
				size = o.Trace.PageBytes // fixed pages: pad to 4 KB
			}
			if size > o.Trace.PageBytes {
				size = o.Trace.PageBytes
			}
			batch = append(batch, core.LPage{LPID: addr.LPID(w.PID + 1), Data: payload[:size]})
			batchBytes += addr.AlignUp(size)
			if batchBytes >= o.BufferBytes {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
		if err := flush(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("harness: unknown interface %d", o.Interface)
	}

	res.Elapsed = meter.Elapsed(dev.MediaTime())
	if res.Elapsed > 0 {
		secs := res.Elapsed.Seconds()
		res.PagesPerSec = float64(res.Pages) / secs
		res.MBPerSec = float64(res.BytesToSSD) / secs / (1 << 20)
	}
	res.Bottleneck = meter.Bottleneck(dev.MediaTime())
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- Bw-tree YCSB (Fig. 10) --------------------------------------------------

// YCSBOptions configures one Bw-tree run.
type YCSBOptions struct {
	Interface  Interface
	Records    uint64
	Ops        int
	ValueBytes int
	CachePct   int // buffer cache as % of dataset size
	Profile    nvme.CostProfile
	Latency    flash.Latency
	// GCEnabled enables garbage collection with the paper's capacity
	// pressure (§IX-C2): logical space 10x the dataset, 30% SSD
	// over-provisioning, GC at 90% full. When false, capacity is ample
	// and GC/checkpointing stay quiet (§IX-C1's "non-durable setup").
	GCEnabled bool
	// ReadHeavy runs the 95%-read mix the paper omitted (footnote 2).
	ReadHeavy bool
	// HostDurability makes the Block configuration checkpoint its host
	// mapping table into the log (extension experiment; no effect on the
	// batch interfaces, whose mapping is durable inside the controller).
	HostDurability bool
	Seed           int64
}

// YCSBResult is one run's measurement.
type YCSBResult struct {
	Interface    Interface
	CachePct     int
	Ops          int
	Elapsed      time.Duration
	OpsPerSec    float64
	BytesWritten int64 // bytes shipped to the SSD during the run (Fig. 10(b))
	Bottleneck   string
	CacheMisses  int64
	GCWork       int64 // pages moved by whichever GC ran
}

// datasetBytes estimates the dataset footprint.
func datasetBytes(records uint64, valueBytes int) int64 {
	return int64(records) * int64(valueBytes+12)
}

// RunYCSB loads the dataset, then runs the op mix and measures virtual
// throughput of the run phase only (the paper reinitialises the index
// before each run).
func RunYCSB(o YCSBOptions) (*YCSBResult, error) {
	if o.Records == 0 || o.Ops <= 0 || o.CachePct <= 0 {
		return nil, errors.New("harness: bad YCSB options")
	}
	if o.ValueBytes == 0 {
		o.ValueBytes = 100
	}
	dataset := datasetBytes(o.Records, o.ValueBytes)
	logical := dataset * 10 // paper: capacity limited to 10x dataset
	capacity := logical + logical*3/10
	if !o.GCEnabled {
		capacity = dataset * 64 // ample: GC pressure never builds
		logical = dataset * 48
	}
	geo := benchGeometry(capacity)
	dev, err := flash.NewDevice(geo, o.Latency)
	if err != nil {
		return nil, err
	}
	meter := nvme.NewMeter(o.Profile)

	var store bwtree.PageStore
	var ctl *core.Controller
	var ls *lsstore.Store
	switch o.Interface {
	case BatchVP, BatchFP:
		cfg := core.DefaultConfig()
		if o.GCEnabled {
			cfg.GCFreeFraction = 0.10 // GC at 90% full (§IX-C2)
			cfg.AutoCheckpointLogBytes = 4 << 20
		} else {
			cfg.GCFreeFraction = 0.02
			cfg.AutoCheckpointLogBytes = 32 << 20
		}
		ctl, err = core.Format(dev, cfg)
		if err != nil {
			return nil, err
		}
		s := &bwtree.EleosStore{C: ctl, Meter: meter}
		if o.Interface == BatchFP {
			s.FixedPageBytes = 4096
		}
		store = s
	case Block:
		lbas := int(logical / 4096)
		ftl, err := blockftl.New(dev, 4096, lbas, 0.10)
		if err != nil {
			return nil, err
		}
		lsCfg := lsstore.DefaultConfig()
		if !o.GCEnabled {
			lsCfg.GCFreeFraction = 0.02
		}
		if o.HostDurability {
			lsCfg.PersistMappingEvery = 8
		}
		ls, err = lsstore.New(ftl, meter, lsCfg)
		if err != nil {
			return nil, err
		}
		store = &bwtree.BlockStore{LS: ls}
	default:
		return nil, fmt.Errorf("harness: unknown interface %d", o.Interface)
	}

	treeCfg := bwtree.Config{
		MaxPageBytes:     4096,
		WriteBufferBytes: 1 << 20, // the paper's 1 MB flush buffer
		CacheBytes:       dataset * int64(o.CachePct) / 100,
	}
	if treeCfg.CacheBytes < 64<<10 {
		treeCfg.CacheBytes = 64 << 10
	}
	tree, err := bwtree.New(store, treeCfg)
	if err != nil {
		return nil, err
	}

	wl, err := ycsb.NewWorkload(ycsb.Config{
		Records: o.Records, ValueBytes: o.ValueBytes, Theta: 0.99, UpdateEvery: 19,
		ReadHeavy: o.ReadHeavy, Seed: o.Seed + 7,
	})
	if err != nil {
		return nil, err
	}

	// Load phase (excluded from measurement).
	for k := uint64(0); k < o.Records; k++ {
		if err := tree.Set(k, wl.Value(k, 0)); err != nil {
			return nil, fmt.Errorf("harness: load key %d: %w", k, err)
		}
	}
	if err := tree.FlushAll(); err != nil {
		return nil, err
	}
	meter.Reset()
	dev.ResetTime()
	bytesBefore := store.BytesWritten()
	missesBefore := tree.Stats().CacheMisses

	// Run phase.
	version := uint64(1)
	for i := 0; i < o.Ops; i++ {
		op := wl.Next()
		if op.Kind == ycsb.OpUpdate {
			version++
			if err := tree.Set(op.Key, wl.Value(op.Key, version)); err != nil {
				return nil, fmt.Errorf("harness: op %d: %w", i, err)
			}
		} else {
			if _, err := tree.Get(op.Key); err != nil {
				return nil, fmt.Errorf("harness: op %d read: %w", i, err)
			}
		}
	}
	if err := tree.FlushAll(); err != nil {
		return nil, err
	}
	if ctl != nil {
		// In-SSD GC consumes controller CPU (staging the moved bytes and
		// re-parsing pages) in addition to the flash ops already charged
		// to media time.
		st := ctl.Stats()
		meter.CtrlCompute(time.Duration(st.GCBytesMoved)*o.Profile.CtrlPerByte +
			time.Duration(st.GCPagesMoved)*o.Profile.CtrlPerPage)
	}

	res := &YCSBResult{
		Interface:    o.Interface,
		CachePct:     o.CachePct,
		Ops:          o.Ops,
		Elapsed:      meter.Elapsed(dev.MediaTime()),
		BytesWritten: store.BytesWritten() - bytesBefore,
		Bottleneck:   meter.Bottleneck(dev.MediaTime()),
		CacheMisses:  tree.Stats().CacheMisses - missesBefore,
	}
	if res.Elapsed > 0 {
		res.OpsPerSec = float64(o.Ops) / res.Elapsed.Seconds()
	}
	if ctl != nil {
		res.GCWork = ctl.Stats().GCPagesMoved
	}
	if ls != nil {
		res.GCWork = ls.Stats().PagesMoved
	}
	return res, nil
}

// CollectDefaultTrace builds the TPC-C trace used by Fig. 9 / Table II
// benchmarks at the given transaction count.
func CollectDefaultTrace(txns int) (*tpcc.Trace, error) {
	cfg := tpcc.DefaultConfig()
	return tpcc.Collect(tpcc.CollectOptions{Config: cfg, Transactions: txns})
}
