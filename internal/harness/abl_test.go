package harness

import (
	"bytes"
	"testing"

	"eleos/internal/core"
)

func TestGCAblationRuns(t *testing.T) {
	results := map[core.GCPolicy]*GCAblationResult{}
	for _, p := range []core.GCPolicy{core.GCMinCostDecline, core.GCGreedy, core.GCOldest} {
		res, err := RunGCAblation(GCAblationOptions{Policy: p, GCBuckets: 3, Batches: 900, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.WriteAmp < 1 {
			t.Fatalf("%v: write amp %.2f below 1", p, res.WriteAmp)
		}
		if res.EBlocksFreed == 0 {
			t.Fatalf("%v: GC never freed anything", p)
		}
		results[p] = res
	}
	// The paper's argument (§VI-A): min-cost-decline should not move more
	// data than oldest-first on a skewed workload.
	mcd, old := results[core.GCMinCostDecline], results[core.GCOldest]
	if mcd.GCBytesMoved > old.GCBytesMoved*3/2 {
		t.Fatalf("min-cost-decline moved %d bytes, oldest %d — policy not paying off",
			mcd.GCBytesMoved, old.GCBytesMoved)
	}
	var buf bytes.Buffer
	if err := PrintGCAblation(&buf, 900, 5); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty ablation output")
	}
}
