package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"eleos/internal/addr"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/health"
)

// The waf experiment measures end-to-end write amplification the way the
// telemetry pipeline reports it: WAF = flash.programmed_bytes /
// core.write.bytes_accepted out of the metrics registry, reconciled
// exactly against the device's own program ledger and the per-source
// attribution counters. Two workload arms per GC policy:
//
//   - sequential: cyclic ascending overwrites of a bounded keyspace —
//     pages die in exactly the order they were written, so reclaimed
//     EBLOCKs are (nearly) all dead and GC relocates almost nothing.
//     The WAF floor is set by page-slot padding plus checkpoint/WAL
//     metadata.
//   - btree-churn: uniformly random updates of the same keyspace at the
//     same volume — the B-tree page-churn case the paper targets, where
//     every reclaimed EBLOCK still holds valid pages and victim
//     selection decides how many ride along.
//
// Both arms write the same bytes over the same keyspace on the same
// capacity-constrained device; only the update order differs, so the
// WAF delta is pure GC relocation cost.
//
// The CI gate bounds the paper-default policy's churn-arm WAF: a
// regression in GC victim selection, hot/cold separation, or the
// attribution plumbing all surface here.

// WAFArm is one (policy, workload) cell with its reconciled accounting.
type WAFArm struct {
	Policy   string `json:"policy"`
	Workload string `json:"workload"` // "sequential" | "btree-churn"

	UserBytes  int64   `json:"user_bytes"`  // core.write.bytes_accepted
	FlashBytes int64   `json:"flash_bytes"` // flash.programmed_bytes == device BytesWritten
	WAF        float64 `json:"waf"`         // FlashBytes / UserBytes

	// Per-source split of FlashBytes (user/gc/checkpoint/wal/recovery).
	SourceBytes  map[string]int64 `json:"source_bytes"`
	GCMovedMB    float64          `json:"gc_moved_mb"`
	EBlocksFreed int64            `json:"eblocks_freed"`
	Erases       int64            `json:"erases"`
}

// WAFResult holds every arm plus the gated headline number.
type WAFResult struct {
	Batches int
	Arms    []WAFArm
	// GatedWAF is the paper-default policy's btree-churn WAF — the
	// number -maxwaf bounds.
	GatedWAF float64
}

// wafGeometry is deliberately small: enough churn pressure to force
// steady-state GC in seconds, matching the ablation experiment's scale.
func wafGeometry() flash.Geometry {
	return flash.Geometry{
		Channels: 4, EBlocksPerChannel: 32,
		EBlockBytes: 256 << 10, WBlockBytes: 16 << 10, RBlockBytes: 4 << 10,
	}
}

// runWAFArm executes one (policy, workload) cell on a fresh device and
// reconciles the three accounting views before reporting.
func runWAFArm(policy core.GCPolicy, workload string, batches int, seed int64) (WAFArm, error) {
	arm := WAFArm{Policy: policy.String(), Workload: workload}
	dev, err := flash.NewDevice(wafGeometry(), flash.Latency{})
	if err != nil {
		return arm, err
	}
	cfg := core.DefaultConfig()
	cfg.GCPolicy = policy
	cfg.GCFreeFraction = 0.12
	cfg.GCMaxRounds = 64
	cfg.AutoCheckpointLogBytes = 2 << 20
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		return arm, err
	}

	rng := rand.New(rand.NewSource(seed))
	const (
		pageBytes = 2048
		perBatch  = 16
		keyspace  = 1200 // live working set, well under device capacity
	)
	payload := make([]byte, pageBytes)
	next := 0
	for b := 0; b < batches; b++ {
		var batch []core.LPage
		for k := 0; k < perBatch; k++ {
			var lpid addr.LPID
			if workload == "sequential" {
				lpid = addr.LPID(1 + next%keyspace)
				next++
			} else {
				lpid = addr.LPID(1 + rng.Intn(keyspace))
			}
			rng.Read(payload[:16])
			batch = append(batch, core.LPage{LPID: lpid, Data: payload})
		}
		if err := ctl.WriteBatch(0, 0, batch); err != nil {
			return arm, fmt.Errorf("%s/%s batch %d: %w", arm.Policy, workload, b, err)
		}
	}

	snap := ctl.MetricsSnapshot()
	d := dev.Stats()
	s := ctl.Stats()
	arm.UserBytes = snap.Counter("core.write.bytes_accepted")
	arm.FlashBytes = snap.Counter("flash.programmed_bytes")
	arm.SourceBytes = health.SourceBytes(snap)
	arm.GCMovedMB = float64(s.GCBytesMoved) / (1 << 20)
	arm.EBlocksFreed = s.GCEBlocksFreed
	arm.Erases = d.EraseAttempts

	// Reconcile: the registry counter, the device ledger, and the summed
	// source attribution must agree to the byte. The telemetry being
	// gated is only trustworthy if they do.
	if arm.FlashBytes != d.BytesWritten {
		return arm, fmt.Errorf("%s/%s: flash.programmed_bytes %d != device ledger %d",
			arm.Policy, workload, arm.FlashBytes, d.BytesWritten)
	}
	var srcSum int64
	for _, v := range arm.SourceBytes {
		srcSum += v
	}
	if srcSum != arm.FlashBytes {
		return arm, fmt.Errorf("%s/%s: source attribution sums to %d, programmed %d",
			arm.Policy, workload, srcSum, arm.FlashBytes)
	}
	if arm.UserBytes <= 0 {
		return arm, fmt.Errorf("%s/%s: no accepted bytes recorded", arm.Policy, workload)
	}
	arm.WAF = float64(arm.FlashBytes) / float64(arm.UserBytes)
	return arm, nil
}

// RunWAF executes both workload arms for each policy.
func RunWAF(policies []core.GCPolicy, batches int, seed int64) (WAFResult, error) {
	res := WAFResult{Batches: batches}
	for _, p := range policies {
		for _, workload := range []string{"sequential", "btree-churn"} {
			arm, err := runWAFArm(p, workload, batches, seed)
			if err != nil {
				return res, err
			}
			res.Arms = append(res.Arms, arm)
			if p == core.GCMinCostDecline && workload == "btree-churn" {
				res.GatedWAF = arm.WAF
			}
		}
	}
	return res, nil
}

// PrintWAF renders the matrix with the per-source split that makes a WAF
// regression diagnosable at a glance.
func PrintWAF(w io.Writer, res WAFResult) {
	fmt.Fprintf(w, "WAF — write amplification by GC policy and workload (%d batches/arm)\n\n", res.Batches)
	fmt.Fprintf(w, "%-18s %-12s %8s %10s %10s %10s %10s %8s %8s\n",
		"policy", "workload", "waf", "user MB", "flash MB", "gc MB", "ckpt MB", "freed", "erases")
	for _, a := range res.Arms {
		fmt.Fprintf(w, "%-18s %-12s %8.3f %10.1f %10.1f %10.1f %10.1f %8d %8d\n",
			a.Policy, a.Workload, a.WAF,
			float64(a.UserBytes)/(1<<20), float64(a.FlashBytes)/(1<<20),
			float64(a.SourceBytes["gc"])/(1<<20), float64(a.SourceBytes["checkpoint"])/(1<<20),
			a.EBlocksFreed, a.Erases)
	}
	fmt.Fprintf(w, "\ngated WAF (%s, btree-churn): %.3f\n", core.GCMinCostDecline, res.GatedWAF)
}

// WriteWAFJSON records the matrix for the perf trajectory.
func WriteWAFJSON(path string, res WAFResult) error {
	doc := struct {
		Experiment string   `json:"experiment"`
		Batches    int      `json:"batches_per_arm"`
		GatedWAF   float64  `json:"gated_waf"`
		Arms       []WAFArm `json:"arms"`
	}{
		Experiment: "waf",
		Batches:    res.Batches,
		GatedWAF:   res.GatedWAF,
		Arms:       res.Arms,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
