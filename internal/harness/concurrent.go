package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"eleos/internal/addr"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/metrics"
	"eleos/internal/trace"
)

// The concurrent experiment measures the parallel write pipeline in wall
// clock, unlike the figure experiments, which replay single-threaded and
// report virtual device time. The flash device emulates NAND channel
// occupancy in real time (SetWallLatencyScale), so the scaling curve shows
// what the pipeline buys: per-channel workers overlap programs across
// channels, and concurrent committers share forced log pages.

// ConcurrentRow is one writer count's measurement.
type ConcurrentRow struct {
	Writers         int
	Batches         int           // total batches across all writers
	Elapsed         time.Duration // wall clock
	MBPerSec        float64
	Speedup         float64 // vs the first row's throughput
	ForceCalls      int64
	FreeRidePct     float64 // Force calls satisfied by another caller's page write
	GroupCommitSize float64 // records made durable per physical log-page write
}

const (
	concPagesPerBatch = 4
	concPageBytes     = 1920
	concWorkingSet    = 2000
)

// RunConcurrent runs the multi-writer throughput experiment: each writer
// owns a durable session and streams batchesPerWriter batches of
// variable-size pages through the controller.
func RunConcurrent(writerCounts []int, batchesPerWriter int) ([]ConcurrentRow, error) {
	var rows []ConcurrentRow
	for _, writers := range writerCounts {
		row, err := runConcurrentOne(writers, batchesPerWriter)
		if err != nil {
			return nil, err
		}
		if len(rows) > 0 {
			row.Speedup = row.MBPerSec / rows[0].MBPerSec
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runConcurrentOne(writers, batchesPerWriter int) (ConcurrentRow, error) {
	return runConcurrentCfg(writers, batchesPerWriter, concurrentOpts{
		lat: flash.TypicalNANDLatency(), wallScale: 1,
	})
}

// concurrentOpts parameterizes the shared concurrent-writer workload so
// other experiments (metrics overhead) can rerun it with a different
// device model or metrics registry.
type concurrentOpts struct {
	lat       flash.Latency
	wallScale float64
	reg       *metrics.Registry // nil: the controller's default registry
	trc       *trace.Recorder   // nil: the controller's default recorder
}

func runConcurrentCfg(writers, batchesPerWriter int, opts concurrentOpts) (ConcurrentRow, error) {
	geo := flash.Geometry{
		Channels: 8, EBlocksPerChannel: 64,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, opts.lat)
	dev.SetWallLatencyScale(opts.wallScale)
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 16 << 20
	cfg.Metrics = opts.reg
	cfg.Trace = opts.trc
	c, err := core.Format(dev, cfg)
	if err != nil {
		return ConcurrentRow{}, err
	}
	sids := make([]uint64, writers)
	for w := range sids {
		if sids[w], err = c.OpenSession(); err != nil {
			return ConcurrentRow{}, err
		}
	}
	data := make([]byte, concPageBytes)
	errs := make(chan error, writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+1) * 1_000_000
			batch := make([]core.LPage, concPagesPerBatch)
			for i := 0; i < batchesPerWriter; i++ {
				for j := range batch {
					lpid := base + uint64((i*concPagesPerBatch+j)%concWorkingSet)
					batch[j] = core.LPage{LPID: addr.LPID(lpid), Data: data}
				}
				if err := c.WriteBatch(sids[w], uint64(i+1), batch); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return ConcurrentRow{}, err
	}
	ls := c.LogStats()
	total := writers * batchesPerWriter
	bytes := float64(total) * concPagesPerBatch * concPageBytes
	row := ConcurrentRow{
		Writers:         writers,
		Batches:         total,
		Elapsed:         elapsed,
		MBPerSec:        bytes / (1 << 20) / elapsed.Seconds(),
		ForceCalls:      ls.ForceCalls,
		GroupCommitSize: ls.GroupCommitSize(),
	}
	if ls.ForceCalls > 0 {
		row.FreeRidePct = 100 * float64(ls.FreeRides) / float64(ls.ForceCalls)
	}
	return row, nil
}

// PrintConcurrent renders the scaling table.
func PrintConcurrent(w io.Writer, rows []ConcurrentRow) {
	fmt.Fprintln(w, "Concurrent write pipeline (wall clock, emulated NAND channel occupancy)")
	fmt.Fprintf(w, "%8s %10s %10s %9s %9s %10s %11s\n",
		"writers", "batches", "MB/s", "speedup", "forces", "free-ride", "grp-commit")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %10d %10.2f %8.2fx %9d %9.1f%% %11.1f\n",
			r.Writers, r.Batches, r.MBPerSec, r.Speedup,
			r.ForceCalls, r.FreeRidePct, r.GroupCommitSize)
	}
}
