package harness

import (
	"fmt"
	"io"
	"math/rand"

	"eleos/internal/addr"
	"eleos/internal/core"
	"eleos/internal/flash"
)

// GCAblationOptions configures the design-choice ablations DESIGN.md calls
// out: the GC victim-selection policy (§VI-A) and the number of open GC
// EBLOCKs used for hot/cold separation (§VI-B).
type GCAblationOptions struct {
	Policy    core.GCPolicy
	GCBuckets int
	// Batches of hot/cold skewed updates to run.
	Batches int
	Seed    int64
}

// GCAblationResult measures the cost of the chosen policy.
type GCAblationResult struct {
	Policy       core.GCPolicy
	GCBuckets    int
	LogicalBytes int64   // bytes the host asked to store
	FlashBytes   int64   // bytes physically programmed
	WriteAmp     float64 // FlashBytes / LogicalBytes
	GCPagesMoved int64
	GCBytesMoved int64
	EBlocksFreed int64
}

// RunGCAblation churns a skewed hot/cold update mix over a
// capacity-constrained device and reports write amplification — the
// metric the victim-selection and hot/cold-separation choices exist to
// minimise.
func RunGCAblation(o GCAblationOptions) (*GCAblationResult, error) {
	if o.Batches <= 0 {
		o.Batches = 800
	}
	if o.GCBuckets <= 0 {
		o.GCBuckets = 3
	}
	geo := flash.Geometry{
		Channels: 4, EBlocksPerChannel: 32,
		EBlockBytes: 256 << 10, WBlockBytes: 16 << 10, RBlockBytes: 4 << 10,
	}
	dev, err := flash.NewDevice(geo, flash.Latency{})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.GCPolicy = o.Policy
	cfg.Provision.GCBuckets = o.GCBuckets
	cfg.GCFreeFraction = 0.12
	// Oldest-first must be allowed to cycle through live cold EBLOCKs
	// (zero net gain per round) before reaching garbage-rich ones — the
	// very pathology §VI-A describes.
	cfg.GCMaxRounds = 64
	cfg.AutoCheckpointLogBytes = 2 << 20
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		return nil, err
	}

	// Three temperature classes (§VI-A's E1/E2 example, §VI-B's ages):
	// hot pages churn every batch, warm pages are rewritten occasionally,
	// and cold pages drip in once and then live forever. The cold data is
	// what GC keeps relocating; keeping it out of the warm/hot destination
	// EBLOCKs (bucket separation) and not collecting it prematurely
	// (victim selection) are what the design choices buy.
	rng := rand.New(rand.NewSource(o.Seed + 11))
	const (
		hotPages  = 50
		warmPages = 250
		coldPages = 1000
		pageBytes = 2048
		perBatch  = 16
	)
	payload := make([]byte, pageBytes)
	coldCursor := 0
	for b := 0; b < o.Batches; b++ {
		var batch []core.LPage
		for k := 0; k < perBatch; k++ {
			var lpid addr.LPID
			switch {
			case k == 0 && b%2 == 0:
				lpid = addr.LPID(10_000 + coldCursor%coldPages) // cold drip
				coldCursor++
			case k < 4:
				lpid = addr.LPID(5_000 + rng.Intn(warmPages)) // warm
			default:
				lpid = addr.LPID(1 + rng.Intn(hotPages)) // hot churn
			}
			rng.Read(payload[:16])
			batch = append(batch, core.LPage{LPID: lpid, Data: payload})
		}
		if err := ctl.WriteBatch(0, 0, batch); err != nil {
			return nil, fmt.Errorf("ablation batch %d: %w", b, err)
		}
	}
	s := ctl.Stats()
	d := dev.Stats()
	res := &GCAblationResult{
		Policy:       o.Policy,
		GCBuckets:    o.GCBuckets,
		LogicalBytes: s.BytesStored,
		FlashBytes:   d.BytesWritten,
		GCPagesMoved: s.GCPagesMoved,
		GCBytesMoved: s.GCBytesMoved,
		EBlocksFreed: s.GCEBlocksFreed,
	}
	if res.LogicalBytes > 0 {
		res.WriteAmp = float64(res.FlashBytes) / float64(res.LogicalBytes)
	}
	return res, nil
}

// PrintGCAblation renders the two ablations DESIGN.md calls out.
func PrintGCAblation(w io.Writer, batches int, seed int64) error {
	fmt.Fprintf(w, "Ablation — GC victim selection (§VI-A) under skewed hot/cold churn\n\n")
	fmt.Fprintf(w, "%-18s %10s %14s %14s %10s\n", "policy", "write-amp", "pages moved", "bytes moved", "erases")
	for _, p := range []core.GCPolicy{core.GCMinCostDecline, core.GCGreedy, core.GCOldest} {
		res, err := RunGCAblation(GCAblationOptions{Policy: p, GCBuckets: 3, Batches: batches, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %10.3f %14d %13.1fM %10d\n",
			res.Policy, res.WriteAmp, res.GCPagesMoved, float64(res.GCBytesMoved)/(1<<20), res.EBlocksFreed)
	}
	fmt.Fprintf(w, "\nAblation — hot/cold separation (§VI-B): open GC EBLOCKs per channel\n\n")
	fmt.Fprintf(w, "%-18s %10s %14s %14s\n", "gc buckets", "write-amp", "pages moved", "bytes moved")
	for _, buckets := range []int{1, 2, 3} {
		res, err := RunGCAblation(GCAblationOptions{Policy: core.GCMinCostDecline, GCBuckets: buckets, Batches: batches, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18d %10.3f %14d %13.1fM\n",
			res.GCBuckets, res.WriteAmp, res.GCPagesMoved, float64(res.GCBytesMoved)/(1<<20))
	}
	return nil
}
