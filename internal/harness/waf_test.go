package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eleos/internal/core"
)

// TestWAFRuns executes the experiment at test scale and checks the
// properties the CI gate relies on: every arm reconciles (RunWAF fails
// otherwise), the churn arm amplifies at least as much as the
// sequential arm, GC actually engaged, and the gated number is the
// default policy's churn WAF.
func TestWAFRuns(t *testing.T) {
	res, err := RunWAF([]core.GCPolicy{core.GCMinCostDecline, core.GCGreedy}, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 4 {
		t.Fatalf("expected 4 arms, got %d", len(res.Arms))
	}
	byCell := map[string]WAFArm{}
	for _, a := range res.Arms {
		if a.WAF < 1 {
			t.Fatalf("%s/%s: WAF %.3f below 1", a.Policy, a.Workload, a.WAF)
		}
		if a.EBlocksFreed == 0 {
			t.Fatalf("%s/%s: GC never reclaimed an EBLOCK — no churn pressure", a.Policy, a.Workload)
		}
		if a.SourceBytes["user"] <= 0 {
			t.Fatalf("%s/%s: no user-attributed programs", a.Policy, a.Workload)
		}
		byCell[a.Policy+"/"+a.Workload] = a
	}
	mcdSeq := byCell[core.GCMinCostDecline.String()+"/sequential"]
	mcdChurn := byCell[core.GCMinCostDecline.String()+"/btree-churn"]
	if mcdChurn.WAF < mcdSeq.WAF {
		t.Fatalf("churn WAF %.3f below sequential floor %.3f", mcdChurn.WAF, mcdSeq.WAF)
	}
	if mcdSeq.SourceBytes["gc"] != 0 {
		t.Fatalf("sequential arm relocated %d GC bytes; cyclic overwrites should leave victims all-dead",
			mcdSeq.SourceBytes["gc"])
	}
	if mcdChurn.SourceBytes["gc"] == 0 {
		t.Fatal("churn arm relocated nothing — workload not exercising victim selection")
	}
	if res.GatedWAF != mcdChurn.WAF {
		t.Fatalf("gated WAF %.3f is not the default policy's churn arm %.3f", res.GatedWAF, mcdChurn.WAF)
	}

	var buf bytes.Buffer
	PrintWAF(&buf, res)
	if !strings.Contains(buf.String(), "btree-churn") || !strings.Contains(buf.String(), "gated WAF") {
		t.Fatalf("unexpected report:\n%s", buf.String())
	}

	path := filepath.Join(t.TempDir(), "waf.json")
	if err := WriteWAFJSON(path, res); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment": "waf"`, `"gated_waf"`, `"source_bytes"`} {
		if !strings.Contains(string(doc), want) {
			t.Fatalf("JSON missing %s:\n%s", want, doc)
		}
	}
}

// TestWAFDeterministic pins that the workload replays byte-identically:
// same seed, same accounting, so the recorded EXPERIMENTS.md numbers
// and the CI gate are stable across machines.
func TestWAFDeterministic(t *testing.T) {
	a, err := runWAFArm(core.GCMinCostDecline, "btree-churn", 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runWAFArm(core.GCMinCostDecline, "btree-churn", 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.FlashBytes != b.FlashBytes || a.UserBytes != b.UserBytes || a.Erases != b.Erases {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}
