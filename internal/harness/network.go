package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/server"
)

// The network experiment measures the TCP front-end end to end: an
// eleosd-style server on loopback, N client connections each streaming
// session-ordered batches through the netproto framing and the retrying
// client library. Where the concurrent experiment isolates the parallel
// write pipeline, this one adds the service layer on top — framing,
// per-connection goroutines, backpressure admission — and reports
// request latency percentiles alongside throughput, the numbers a
// deployment actually serves. The NAND emulates channel occupancy in
// real time, so scaling past one client shows pipeline overlap exactly
// as in-process writers do (DESIGN.md §4.1, §6).

// NetworkRow is one client count's measurement.
type NetworkRow struct {
	Clients         int
	Batches         int           // total batches across all clients
	Elapsed         time.Duration // wall clock
	MBPerSec        float64
	Speedup         float64       // vs the first row's throughput
	P50, P95, P99   time.Duration // per-flush round-trip latency
	Retries         int64         // client-side retry attempts
	Redials         int64         // reconnects beyond the first dial, summed
	ServerPeakBytes int64         // high-water mark of admitted batch bytes
}

const (
	netPagesPerBatch = 4
	netPageBytes     = 1920
	netWorkingSet    = 2000
)

// RunNetwork runs the loopback scaling experiment: for each client
// count, a fresh device + controller is served over TCP and each client
// owns one connection and one durable session.
func RunNetwork(clientCounts []int, batchesPerClient int) ([]NetworkRow, error) {
	var rows []NetworkRow
	for _, clients := range clientCounts {
		row, err := runNetworkOne(clients, batchesPerClient)
		if err != nil {
			return nil, err
		}
		if len(rows) > 0 {
			row.Speedup = row.MBPerSec / rows[0].MBPerSec
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runNetworkOne(clients, batchesPerClient int) (NetworkRow, error) {
	geo := flash.Geometry{
		Channels: 8, EBlocksPerChannel: 64,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, flash.TypicalNANDLatency())
	dev.SetWallLatencyScale(1)
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 16 << 20
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		return NetworkRow{}, err
	}
	srv := server.New(ctl, server.Config{MaxConns: clients + 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return NetworkRow{}, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()

	data := make([]byte, netPageBytes)
	latencies := make([][]time.Duration, clients)
	var retries, redials int64
	var mu sync.Mutex
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(ln.Addr().String(), client.Options{Seed: int64(w + 1)})
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", w, err)
				return
			}
			sess, err := cl.NewSession()
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", w, err)
				return
			}
			base := uint64(w+1) * 1_000_000
			lats := make([]time.Duration, 0, batchesPerClient)
			batch := make([]core.LPage, netPagesPerBatch)
			for i := 0; i < batchesPerClient; i++ {
				for j := range batch {
					lpid := base + uint64((i*netPagesPerBatch+j)%netWorkingSet)
					batch[j] = core.LPage{LPID: addr.LPID(lpid), Data: data}
				}
				t0 := time.Now()
				if err := sess.Flush(batch); err != nil {
					errs <- fmt.Errorf("client %d batch %d: %w", w, i, err)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			st := cl.Stats()
			mu.Lock()
			latencies[w] = lats
			retries += st.Retries
			redials += st.Dials - 1
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return NetworkRow{}, err
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := clients * batchesPerClient
	bytes := float64(total) * netPagesPerBatch * netPageBytes
	return NetworkRow{
		Clients:         clients,
		Batches:         total,
		Elapsed:         elapsed,
		MBPerSec:        bytes / (1 << 20) / elapsed.Seconds(),
		P50:             percentile(all, 50),
		P95:             percentile(all, 95),
		P99:             percentile(all, 99),
		Retries:         retries,
		Redials:         redials,
		ServerPeakBytes: srv.Stats().PeakInflight,
	}, nil
}

// percentile returns the p-th percentile of sorted durations
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// PrintNetwork renders the scaling table.
func PrintNetwork(w io.Writer, rows []NetworkRow) {
	fmt.Fprintln(w, "Network front-end (loopback TCP, wall clock, emulated NAND channel occupancy)")
	fmt.Fprintf(w, "%8s %9s %10s %9s %10s %10s %10s %8s\n",
		"clients", "batches", "MB/s", "speedup", "p50", "p95", "p99", "retries")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %9d %10.2f %8.2fx %10s %10s %10s %8d\n",
			r.Clients, r.Batches, r.MBPerSec, r.Speedup,
			r.P50.Round(10*time.Microsecond), r.P95.Round(10*time.Microsecond),
			r.P99.Round(10*time.Microsecond), r.Retries)
	}
}

// networkJSONRow flattens a NetworkRow into stable, unit-explicit fields
// for the perf trajectory.
type networkJSONRow struct {
	Clients         int     `json:"clients"`
	Batches         int     `json:"batches"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	MBPerSec        float64 `json:"mb_per_sec"`
	Speedup         float64 `json:"speedup"`
	P50Micros       int64   `json:"p50_us"`
	P95Micros       int64   `json:"p95_us"`
	P99Micros       int64   `json:"p99_us"`
	Retries         int64   `json:"retries"`
	Redials         int64   `json:"redials"`
	ServerPeakBytes int64   `json:"server_peak_inflight_bytes"`
}

// WriteNetworkJSON emits the rows as a BENCH_network.json-style document
// so the network path joins the recorded perf trajectory.
func WriteNetworkJSON(path string, batchesPerClient int, rows []NetworkRow) error {
	doc := struct {
		Experiment       string           `json:"experiment"`
		Transport        string           `json:"transport"`
		PagesPerBatch    int              `json:"pages_per_batch"`
		PageBytes        int              `json:"page_bytes"`
		BatchesPerClient int              `json:"batches_per_client"`
		Rows             []networkJSONRow `json:"rows"`
	}{
		Experiment:       "network",
		Transport:        "tcp-loopback",
		PagesPerBatch:    netPagesPerBatch,
		PageBytes:        netPageBytes,
		BatchesPerClient: batchesPerClient,
	}
	for _, r := range rows {
		doc.Rows = append(doc.Rows, networkJSONRow{
			Clients:         r.Clients,
			Batches:         r.Batches,
			ElapsedMS:       float64(r.Elapsed.Microseconds()) / 1000,
			MBPerSec:        r.MBPerSec,
			Speedup:         r.Speedup,
			P50Micros:       r.P50.Microseconds(),
			P95Micros:       r.P95.Microseconds(),
			P99Micros:       r.P99.Microseconds(),
			Retries:         r.Retries,
			Redials:         r.Redials,
			ServerPeakBytes: r.ServerPeakBytes,
		})
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
