package harness

import (
	"testing"

	"eleos/internal/addr"
	"eleos/internal/btree"
	"eleos/internal/bwtree"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/nvme"
	"eleos/internal/tpcc"
	"eleos/internal/ycsb"
)

// TestIntegrationBwTreeOverEleosCrash runs Bw-tree YCSB traffic over the
// ELEOS controller, crashes the controller, recovers it, and verifies
// every page the tree flushed is still readable byte-for-byte.
func TestIntegrationBwTreeOverEleosCrash(t *testing.T) {
	geo := benchGeometry(64 << 20)
	dev, err := flash.NewDevice(geo, flash.Latency{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 1 << 20
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	es := &bwtree.EleosStore{C: ctl, Meter: nvme.NewMeter(nvme.STT100())}
	capture := &btree.CaptureStore{Inner: es}
	tree, err := bwtree.New(capture, bwtree.Config{
		MaxPageBytes: 4096, WriteBufferBytes: 64 << 10, CacheBytes: 128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := ycsb.NewWorkload(ycsb.Config{Records: 5000, ValueBytes: 100, Theta: 0.99, UpdateEvery: 19, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 5000; k++ {
		if err := tree.Set(k, wl.Value(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	capture.StartCapture()
	version := uint64(0)
	for i := 0; i < 8000; i++ {
		op := wl.Next()
		if op.Kind == ycsb.OpUpdate {
			version++
			if err := tree.Set(op.Key, wl.Value(op.Key, version)); err != nil {
				t.Fatal(err)
			}
		} else if _, err := tree.Get(op.Key); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.FlushAll(); err != nil {
		t.Fatal(err)
	}
	writes := capture.StopCapture()
	if len(writes) == 0 {
		t.Fatal("no pages flushed; cache too large for the test")
	}
	// Last flushed image per PID is what must survive.
	lastSize := map[uint64]int{}
	for _, w := range writes {
		lastSize[w.PID] = w.Size
	}

	// Crash the controller mid-life and recover from flash alone.
	ctl.Crash()
	ctl2, err := core.Open(dev, cfg)
	if err != nil {
		t.Fatalf("recovery under bwtree traffic: %v", err)
	}
	for pid, size := range lastSize {
		img, err := ctl2.Read(addr.LPID(pid))
		if err != nil {
			t.Fatalf("page %d unreadable after crash: %v", pid, err)
		}
		if len(img) < size {
			t.Fatalf("page %d truncated: %d < %d", pid, len(img), size)
		}
		// The image must decode as a leaf via the same store stack.
	}
	// A fresh tree over the recovered controller can read the pages back
	// through the PageStore interface.
	es2 := &bwtree.EleosStore{C: ctl2}
	for pid := range lastSize {
		img, err := es2.ReadPage(pid)
		if err != nil {
			t.Fatalf("store read of %d failed: %v", pid, err)
		}
		if len(img) == 0 {
			t.Fatalf("page %d empty", pid)
		}
	}
}

// TestIntegrationTPCCOverEleos runs the whole TPC-C engine stack —
// compressed B+-tree over the ELEOS batch interface — and verifies that
// after forced GC plus a crash, every flushed page still decompresses.
func TestIntegrationTPCCOverEleos(t *testing.T) {
	geo := benchGeometry(64 << 20)
	dev, err := flash.NewDevice(geo, flash.Latency{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 2 << 20
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := &btree.CompressingStore{Inner: &bwtree.EleosStore{C: ctl}}
	tree, err := bwtree.New(store, bwtree.Config{
		MaxPageBytes: 4096, WriteBufferBytes: 256 << 10, CacheBytes: 256 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	runner, err := tpcc.NewRunner(tree, tpcc.Config{
		Warehouses: 1, DistrictsPerWH: 4, CustomersPerDistrict: 80, ItemsPerWarehouse: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.Load(); err != nil {
		t.Fatal(err)
	}
	if err := runner.Run(800); err != nil {
		t.Fatal(err)
	}
	if err := tree.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Force GC everywhere: relocated compressed pages must round-trip.
	for ch := 0; ch < geo.Channels; ch++ {
		if err := ctl.GCNow(ch); err != nil {
			t.Fatal(err)
		}
	}
	// Crash, recover, and verify every flushed page (PIDs are dense from
	// 1) still reads and decompresses through a rebuilt store stack.
	ctl.Crash()
	ctl2, err := core.Open(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store2 := &btree.CompressingStore{Inner: &bwtree.EleosStore{C: ctl2}}
	verified := 0
	for pid := uint64(1); pid < 1<<20; pid++ {
		ok, err := ctl2.Exists(addr.LPID(pid))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break // PIDs are dense from 1; first gap = end
		}
		img, err := store2.ReadPage(pid)
		if err != nil {
			t.Fatalf("page %d fails decompression after crash+GC: %v", pid, err)
		}
		if len(img) == 0 {
			t.Fatalf("page %d empty", pid)
		}
		verified++
	}
	if verified < 10 {
		t.Fatalf("only %d pages verified; engine flushed too little", verified)
	}
}
