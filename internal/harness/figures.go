package harness

import (
	"fmt"
	"io"

	"eleos/internal/costmodel"
	"eleos/internal/flash"
	"eleos/internal/nvme"
	"eleos/internal/tpcc"
)

// Scale sizes the experiments. The paper ran server-scale (100 GB trace,
// 10 M records); the default here is laptop-scale with the same shape.
type Scale struct {
	TPCCTransactions int
	YCSBRecords      uint64
	YCSBOps          int
	BufferSizes      []int // Fig. 9 x-axis
	CachePcts        []int // Fig. 10(a) x-axis
}

// DefaultScale returns a scale that completes each experiment in seconds.
func DefaultScale() Scale {
	return Scale{
		TPCCTransactions: 2000,
		YCSBRecords:      60_000,
		YCSBOps:          60_000,
		BufferSizes:      []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20},
		CachePcts:        []int{10, 25, 50, 75, 100},
	}
}

// Fig9Row is one buffer size's three-interface comparison.
type Fig9Row struct {
	BufferBytes int
	Results     map[Interface]*ReplayResult
}

// RunFig9 regenerates Fig. 9: TPC-C write throughput by write-buffer size
// on the STT100 profile with realistic NAND latency.
func RunFig9(tr *tpcc.Trace, bufferSizes []int) ([]Fig9Row, error) {
	var rows []Fig9Row
	lat := flash.TypicalNANDLatency()
	for _, size := range bufferSizes {
		row := Fig9Row{BufferBytes: size, Results: map[Interface]*ReplayResult{}}
		for _, iface := range Interfaces {
			res, err := ReplayTPCC(ReplayOptions{
				Trace: tr, Interface: iface, BufferBytes: size,
				Profile: nvme.STT100(), Latency: lat,
			})
			if err != nil {
				return nil, fmt.Errorf("fig9 %v/%d: %w", iface, size, err)
			}
			row.Results[iface] = res
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig9 renders the figure as a table.
func PrintFig9(w io.Writer, tr *tpcc.Trace, rows []Fig9Row) {
	fmt.Fprintf(w, "Fig. 9 — TPC-C write throughput (pages/sec), varying the batch write-buffer size\n")
	fmt.Fprintf(w, "trace: %d page writes, avg %.0f B compressed (paper: 1.91 KB)\n\n", len(tr.Writes), tr.AvgSize())
	fmt.Fprintf(w, "%12s %14s %14s %14s %10s %10s\n", "buffer", "Block", "Batch(FP)", "Batch(VP)", "VP/FP", "VP/Block")
	for _, r := range rows {
		b, fp, vp := r.Results[Block], r.Results[BatchFP], r.Results[BatchVP]
		fmt.Fprintf(w, "%12s %14.0f %14.0f %14.0f %9.2fx %9.2fx\n",
			fmtBytes(r.BufferBytes), b.PagesPerSec, fp.PagesPerSec, vp.PagesPerSec,
			ratio(vp.PagesPerSec, fp.PagesPerSec), ratio(vp.PagesPerSec, b.PagesPerSec))
	}
}

// Table2Result bundles the three interfaces under the high-end profile.
type Table2Result struct {
	Results map[Interface]*ReplayResult
}

// RunTable2 regenerates Table II: the same replay with a 1 MB buffer on
// the high-end-CPU simulator profile (zero-latency media moves the
// bottleneck to the CPU, as in the paper).
func RunTable2(tr *tpcc.Trace) (*Table2Result, error) {
	out := &Table2Result{Results: map[Interface]*ReplayResult{}}
	for _, iface := range Interfaces {
		res, err := ReplayTPCC(ReplayOptions{
			Trace: tr, Interface: iface, BufferBytes: 1 << 20,
			Profile: nvme.HighEnd(), Latency: flash.Latency{},
		})
		if err != nil {
			return nil, fmt.Errorf("table2 %v: %w", iface, err)
		}
		out.Results[iface] = res
	}
	return out, nil
}

// PrintTable2 renders the table with the paper's reference numbers.
func PrintTable2(w io.Writer, t *Table2Result) {
	fmt.Fprintf(w, "Table II — TPC-C write throughput, programmable-SSD simulator with a high-end CPU (1 MB buffer)\n\n")
	fmt.Fprintf(w, "%-28s %12s %14s %14s\n", "", "Block", "Batch(FP)", "Batch(VP)")
	b, fp, vp := t.Results[Block], t.Results[BatchFP], t.Results[BatchVP]
	fmt.Fprintf(w, "%-28s %12.2fK %13.2fK %13.2fK\n", "Write Throughput (pages/s)",
		b.PagesPerSec/1000, fp.PagesPerSec/1000, vp.PagesPerSec/1000)
	fmt.Fprintf(w, "%-28s %12.1f %14.1f %14.1f\n", "Write Bandwidth (MB/s)", b.MBPerSec, fp.MBPerSec, vp.MBPerSec)
	fmt.Fprintf(w, "%-28s %12s %14s %14s\n", "Bottleneck", b.Bottleneck, fp.Bottleneck, vp.Bottleneck)
	fmt.Fprintf(w, "\npaper reference:            %12s %14s %14s\n", "52.73K", "255.03K", "447.79K")
	fmt.Fprintf(w, "paper bandwidth (MB/s):     %12s %14s %14s\n", "206.17", "1015.86", "992.39")
	fmt.Fprintf(w, "measured Batch(VP)/Block pages ratio: %.1fx (paper: 8.5x)\n", ratio(vp.PagesPerSec, b.PagesPerSec))
}

// Fig10Row is one cache size's three-interface comparison.
type Fig10Row struct {
	CachePct int
	Results  map[Interface]*YCSBResult
}

// RunFig10a regenerates Fig. 10(a): Bw-tree YCSB throughput by cache size,
// GC and checkpointing quiet.
func RunFig10a(records uint64, ops int, cachePcts []int) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, pct := range cachePcts {
		row := Fig10Row{CachePct: pct, Results: map[Interface]*YCSBResult{}}
		for _, iface := range Interfaces {
			res, err := RunYCSB(YCSBOptions{
				Interface: iface, Records: records, Ops: ops, CachePct: pct,
				Profile: nvme.STT100(), Latency: flash.TypicalNANDLatency(), Seed: 1,
			})
			if err != nil {
				return nil, fmt.Errorf("fig10a %v/%d%%: %w", iface, pct, err)
			}
			row.Results[iface] = res
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig10a renders the figure.
func PrintFig10a(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "Fig. 10(a) — Bw-tree YCSB throughput (ops/sec) with a 1 MB write buffer, varying cache size\n\n")
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s\n", "cache", "Block", "Batch(FP)", "Batch(VP)", "Batch/Block")
	for _, r := range rows {
		b, fp, vp := r.Results[Block], r.Results[BatchFP], r.Results[BatchVP]
		fmt.Fprintf(w, "%7d%% %12.0f %12.0f %12.0f %11.2fx\n",
			r.CachePct, b.OpsPerSec, fp.OpsPerSec, vp.OpsPerSec, ratio(vp.OpsPerSec, b.OpsPerSec))
	}
	fmt.Fprintf(w, "\npaper: Batch outperformed Block by 1.12–1.97x; VP tracks FP ops/sec\n")
}

// PrintFig10b renders total data written from the Fig. 10(a) runs.
func PrintFig10b(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "Fig. 10(b) — total data written to the SSD during the runs (MB)\n\n")
	fmt.Fprintf(w, "%8s %12s %12s %12s %14s\n", "cache", "Block", "Batch(FP)", "Batch(VP)", "VP saving vs FP")
	for _, r := range rows {
		b, fp, vp := r.Results[Block], r.Results[BatchFP], r.Results[BatchVP]
		save := 0.0
		if fp.BytesWritten > 0 {
			save = 100 * (1 - float64(vp.BytesWritten)/float64(fp.BytesWritten))
		}
		fmt.Fprintf(w, "%7d%% %12.1f %12.1f %12.1f %13.1f%%\n",
			r.CachePct, mb(b.BytesWritten), mb(fp.BytesWritten), mb(vp.BytesWritten), save)
	}
	fmt.Fprintf(w, "\npaper: VP reduces data written by about 30%% versus FP\n")
}

// Fig10cResult holds GC-on/off pairs at the 10%% cache point.
type Fig10cResult struct {
	Off map[Interface]*YCSBResult
	On  map[Interface]*YCSBResult
}

// RunFig10c regenerates Fig. 10(c): throughput with GC enabled at 10%
// cache, against the GC-off baseline.
func RunFig10c(records uint64, ops int) (*Fig10cResult, error) {
	out := &Fig10cResult{Off: map[Interface]*YCSBResult{}, On: map[Interface]*YCSBResult{}}
	for _, iface := range Interfaces {
		for _, gc := range []bool{false, true} {
			res, err := RunYCSB(YCSBOptions{
				Interface: iface, Records: records, Ops: ops, CachePct: 10,
				Profile: nvme.STT100(), Latency: flash.TypicalNANDLatency(),
				GCEnabled: gc, Seed: 1,
			})
			if err != nil {
				return nil, fmt.Errorf("fig10c %v gc=%v: %w", iface, gc, err)
			}
			if gc {
				out.On[iface] = res
			} else {
				out.Off[iface] = res
			}
		}
	}
	return out, nil
}

// PrintFig10c renders the figure.
func PrintFig10c(w io.Writer, r *Fig10cResult) {
	fmt.Fprintf(w, "Fig. 10(c) — Bw-tree YCSB throughput with garbage collection, 10%% cache\n\n")
	fmt.Fprintf(w, "%-12s %14s %14s %10s %12s\n", "interface", "GC off (ops/s)", "GC on (ops/s)", "decline", "GC moves")
	for _, iface := range Interfaces {
		off, on := r.Off[iface], r.On[iface]
		decl := 0.0
		if off.OpsPerSec > 0 {
			decl = 100 * (1 - on.OpsPerSec/off.OpsPerSec)
		}
		fmt.Fprintf(w, "%-12s %14.0f %14.0f %9.1f%% %12d\n", iface, off.OpsPerSec, on.OpsPerSec, decl, on.GCWork)
	}
	fmt.Fprintf(w, "\npaper: Batch(VP) declined ~5.2%%, Block ~42.3%%\n")
}

// RunReadHeavy runs the 95%-read mix the paper omitted (footnote 2) at
// the given cache sizes — an extension experiment. Batching only helps the
// write path (§IX-A3), so the gap between interfaces should shrink versus
// the write-heavy Fig. 10(a).
func RunReadHeavy(records uint64, ops int, cachePcts []int) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, pct := range cachePcts {
		row := Fig10Row{CachePct: pct, Results: map[Interface]*YCSBResult{}}
		for _, iface := range Interfaces {
			res, err := RunYCSB(YCSBOptions{
				Interface: iface, Records: records, Ops: ops, CachePct: pct,
				Profile: nvme.STT100(), Latency: flash.TypicalNANDLatency(),
				ReadHeavy: true, Seed: 1,
			})
			if err != nil {
				return nil, fmt.Errorf("readheavy %v/%d%%: %w", iface, pct, err)
			}
			row.Results[iface] = res
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintReadHeavy renders the extension experiment.
func PrintReadHeavy(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "Extension — read-heavy YCSB (95%% reads; the mix the paper omitted, footnote 2)\n\n")
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s\n", "cache", "Block", "Batch(FP)", "Batch(VP)", "Batch/Block")
	for _, r := range rows {
		b, fp, vp := r.Results[Block], r.Results[BatchFP], r.Results[BatchVP]
		fmt.Fprintf(w, "%7d%% %12.0f %12.0f %12.0f %11.2fx\n",
			r.CachePct, b.OpsPerSec, fp.OpsPerSec, vp.OpsPerSec, ratio(vp.OpsPerSec, b.OpsPerSec))
	}
	fmt.Fprintf(w, "\nbatching helps only the write path, so the advantage narrows under reads\n")
}

// RunFig1 produces the three cost/performance curves of Fig. 1(c).
func RunFig1() (mem, ssd, reduced []costmodel.Point, crossConventional, crossReduced float64) {
	p := costmodel.DefaultParams()
	rates := []float64{1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7}
	mem, ssd, reduced = p.Series(1000, rates, 4)
	crossConventional, _ = p.Crossover(1000, 1, 1e10, 1)
	crossReduced, _ = p.Crossover(1000, 1, 1e10, 0.25)
	return
}

// PrintFig1 renders the cost model curves.
func PrintFig1(w io.Writer) {
	mem, ssd, red, x1, x2 := RunFig1()
	fmt.Fprintf(w, "Fig. 1(c) — cost vs performance for a 1 TB key-value store\n\n")
	fmt.Fprintf(w, "%12s %14s %14s %18s\n", "ops/sec", "memory ($)", "SSD ($)", "SSD, I/O cost/4 ($)")
	for i := range mem {
		fmt.Fprintf(w, "%12.0f %14.0f %14.0f %18.0f\n", mem[i].OpsPerSec, mem[i].CostUSD, ssd[i].CostUSD, red[i].CostUSD)
	}
	fmt.Fprintf(w, "\ncrossover (memory becomes cheaper): conventional I/O at %.0f ops/s; reduced I/O at %.0f ops/s\n", x1, x2)
	fmt.Fprintf(w, "reducing the I/O execution cost extends the range where SSD-resident data wins (the dotted curve)\n")
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func mb(n int64) float64 { return float64(n) / (1 << 20) }

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
