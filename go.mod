module eleos

go 1.22
