package eleos_test

// Benchmarks regenerating the paper's evaluation (§IX): one benchmark per
// table and figure. Each reports the paper's own metrics (pages/sec,
// MB/sec, ops/sec) as custom benchmark outputs in *virtual* time — the
// deterministic resource model described in DESIGN.md — alongside the
// usual wall-clock ns/op of running the simulation itself.
//
// Run: go test -bench=. -benchmem

import (
	"sync"
	"testing"

	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/harness"
	"eleos/internal/nvme"
	"eleos/internal/tpcc"
)

var (
	benchTraceOnce sync.Once
	benchTrace     *tpcc.Trace
	benchTraceErr  error
)

func traceForBench(b *testing.B) *tpcc.Trace {
	b.Helper()
	benchTraceOnce.Do(func() {
		benchTrace, benchTraceErr = harness.CollectDefaultTrace(3000)
	})
	if benchTraceErr != nil {
		b.Fatal(benchTraceErr)
	}
	return benchTrace
}

// BenchmarkFig1CostModel regenerates the Fig. 1 cost/performance curves.
func BenchmarkFig1CostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mem, ssd, red, x1, x2 := harness.RunFig1()
		if len(mem) == 0 || len(ssd) == 0 || len(red) == 0 || x2 <= x1 {
			b.Fatal("fig1 model broken")
		}
	}
}

// BenchmarkFig9TPCCWriteThroughput regenerates Fig. 9: TPC-C write
// throughput versus write-buffer size on the STT100 profile, one
// sub-benchmark per (interface, buffer size).
func BenchmarkFig9TPCCWriteThroughput(b *testing.B) {
	tr := traceForBench(b)
	lat := flash.TypicalNANDLatency()
	for _, size := range []int{256 << 10, 1 << 20, 4 << 20} {
		for _, iface := range harness.Interfaces {
			name := iface.String() + "/" + fmtSize(size)
			b.Run(name, func(b *testing.B) {
				var last *harness.ReplayResult
				for i := 0; i < b.N; i++ {
					res, err := harness.ReplayTPCC(harness.ReplayOptions{
						Trace: tr, Interface: iface, BufferBytes: size,
						Profile: nvme.STT100(), Latency: lat,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.PagesPerSec, "pages/sec")
				b.ReportMetric(last.MBPerSec, "MB/sec")
			})
		}
	}
}

// BenchmarkTable2HighEndCPU regenerates Table II: the same replay with a
// 1 MB buffer on the high-end-CPU profile.
func BenchmarkTable2HighEndCPU(b *testing.B) {
	tr := traceForBench(b)
	for _, iface := range harness.Interfaces {
		b.Run(iface.String(), func(b *testing.B) {
			var last *harness.ReplayResult
			for i := 0; i < b.N; i++ {
				res, err := harness.ReplayTPCC(harness.ReplayOptions{
					Trace: tr, Interface: iface, BufferBytes: 1 << 20,
					Profile: nvme.HighEnd(), Latency: flash.Latency{},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.PagesPerSec, "pages/sec")
			b.ReportMetric(last.MBPerSec, "MB/sec")
		})
	}
}

// BenchmarkFig10aBwTreeYCSB regenerates Fig. 10(a): Bw-tree YCSB
// throughput by cache size, GC quiet.
func BenchmarkFig10aBwTreeYCSB(b *testing.B) {
	for _, pct := range []int{10, 50, 100} {
		for _, iface := range harness.Interfaces {
			b.Run(iface.String()+"/cache"+itoa(pct), func(b *testing.B) {
				var last *harness.YCSBResult
				for i := 0; i < b.N; i++ {
					res, err := harness.RunYCSB(harness.YCSBOptions{
						Interface: iface, Records: 20_000, Ops: 20_000, CachePct: pct,
						Profile: nvme.STT100(), Latency: flash.TypicalNANDLatency(), Seed: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.OpsPerSec, "ops/sec")
			})
		}
	}
}

// BenchmarkFig10bDataWritten regenerates Fig. 10(b): total data written to
// the SSD at the 10% cache point.
func BenchmarkFig10bDataWritten(b *testing.B) {
	for _, iface := range harness.Interfaces {
		b.Run(iface.String(), func(b *testing.B) {
			var last *harness.YCSBResult
			for i := 0; i < b.N; i++ {
				res, err := harness.RunYCSB(harness.YCSBOptions{
					Interface: iface, Records: 20_000, Ops: 20_000, CachePct: 10,
					Profile: nvme.STT100(), Latency: flash.TypicalNANDLatency(), Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.BytesWritten)/(1<<20), "MB-written")
		})
	}
}

// BenchmarkFig10cGarbageCollection regenerates Fig. 10(c): throughput with
// GC enabled at 10% cache.
func BenchmarkFig10cGarbageCollection(b *testing.B) {
	for _, iface := range harness.Interfaces {
		for _, gc := range []bool{false, true} {
			name := iface.String() + "/gc-off"
			if gc {
				name = iface.String() + "/gc-on"
			}
			b.Run(name, func(b *testing.B) {
				var last *harness.YCSBResult
				for i := 0; i < b.N; i++ {
					res, err := harness.RunYCSB(harness.YCSBOptions{
						Interface: iface, Records: 20_000, Ops: 25_000, CachePct: 10,
						Profile: nvme.STT100(), Latency: flash.TypicalNANDLatency(),
						GCEnabled: gc, Seed: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.OpsPerSec, "ops/sec")
				b.ReportMetric(float64(last.GCWork), "gc-pages-moved")
			})
		}
	}
}

// BenchmarkAblationGCPolicy compares the paper's minimum-cost-decline
// victim selection (§VI-A) against greedy and oldest-first under skewed
// hot/cold churn, reporting write amplification and GC data movement.
func BenchmarkAblationGCPolicy(b *testing.B) {
	for _, p := range []core.GCPolicy{core.GCMinCostDecline, core.GCGreedy, core.GCOldest} {
		b.Run(p.String(), func(b *testing.B) {
			var last *harness.GCAblationResult
			for i := 0; i < b.N; i++ {
				res, err := harness.RunGCAblation(harness.GCAblationOptions{
					Policy: p, GCBuckets: 3, Batches: 900, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.WriteAmp, "write-amp")
			b.ReportMetric(float64(last.GCBytesMoved)/(1<<20), "MB-moved")
		})
	}
}

// BenchmarkAblationHotColdBuckets compares 1 vs 3 open GC EBLOCKs per
// channel (§VI-B's cold/hot separation).
func BenchmarkAblationHotColdBuckets(b *testing.B) {
	for _, buckets := range []int{1, 3} {
		b.Run("buckets"+itoa(buckets), func(b *testing.B) {
			var last *harness.GCAblationResult
			for i := 0; i < b.N; i++ {
				res, err := harness.RunGCAblation(harness.GCAblationOptions{
					Policy: core.GCMinCostDecline, GCBuckets: buckets, Batches: 900, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.WriteAmp, "write-amp")
			b.ReportMetric(float64(last.GCBytesMoved)/(1<<20), "MB-moved")
		})
	}
}

func fmtSize(n int) string {
	if n >= 1<<20 {
		return itoa(n>>20) + "MB"
	}
	return itoa(n>>10) + "KB"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
