// Command eleosctl operates an ELEOS-formatted simulated device persisted
// as an image file, exercising the controller's public interface: batched
// variable-size writes, reads by LPID, sessions, garbage collection,
// checkpointing, and crash recovery.
//
// Usage:
//
//	eleosctl -img dev.img format [-channels N] [-eblocks N]
//	eleosctl -img dev.img write <lpid>=<text> [<lpid>=<text> ...]
//	eleosctl -img dev.img read <lpid> [...]
//	eleosctl -img dev.img fill -pages N -size BYTES [-seed S]
//	eleosctl -img dev.img gc [-channel N]
//	eleosctl -img dev.img checkpoint
//	eleosctl -img dev.img stats [-json]
//	eleosctl get -addr HOST:PORT <lpid> [...]
//
// Every invocation recovers the controller from the image (Open — the
// paper's §VIII recovery path runs each time), applies the operation, and
// saves the image back, so a kill -9 between invocations is exactly a
// controller crash.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/health"
	"eleos/internal/metrics"
	"eleos/internal/netproto"
	"eleos/internal/trace"
)

func main() {
	img := flag.String("img", "eleos.img", "device image file")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	if err := run(*img, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "eleosctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: eleosctl [-img FILE] <command> [args]

commands:
  format [-channels N] [-eblocks N]   create and format a fresh device
  write <lpid>=<text> ...             write one batch of variable-size pages
  read <lpid> ...                     read pages by LPID
  fill -pages N -size BYTES [-seed S] write N random pages (GC exercise)
  gc [-channel N]                     force a garbage-collection pass
  checkpoint                          take a fuzzy checkpoint
  stats [-json] [-addr HOST:PORT]     print controller, media, metrics and health statistics
                                      (with -addr: fetched from a running eleosd over stats_full)
  top [-addr HOST:PORT] [-interval D] live device dashboard streamed from a running eleosd
                                      over watch_stats (throughput, WAF, GC, wear, tenants)
  session-open                        open a durable write-ordering session
  swrite -sid S -wsn N <lpid>=<text>  ordered write (stale WSNs are ACKed, not re-applied)
  session-status -sid S               show a session's highest applied WSN
  trace [-addr HOST:PORT] [-chrome F] dump a running eleosd's flight recorder
                                      (text timeline, or Chrome trace_event JSON with -chrome)
  get [-addr HOST:PORT] [-raw] <lpid> ...
                                      read pages from a running eleosd (one lpid uses
                                      read_page; several use one read_batch round trip)
`)
}

func run(img string, args []string) error {
	cmd, rest := args[0], args[1:]
	if cmd == "format" {
		return doFormat(img, rest)
	}
	if cmd == "trace" {
		// Network command: talks to a running eleosd, never touches the
		// image file.
		return doTrace(rest)
	}
	if cmd == "get" {
		// Network command: read pages from a running eleosd over the
		// read_page/read_batch wire protocol.
		return doGet(rest)
	}
	if cmd == "top" {
		// Network command: live dashboard over the watch_stats stream.
		return doTop(rest)
	}
	if cmd == "stats" && hasAddrFlag(rest) {
		// Network mode: one stats_full round trip to a running eleosd
		// instead of recovering the image.
		return doStatsRemote(rest)
	}
	dev, err := flash.LoadFile(img, flash.Latency{})
	if err != nil {
		return fmt.Errorf("load %s (run 'format' first?): %w", img, err)
	}
	ctl, err := core.Open(dev, core.DefaultConfig())
	if err != nil {
		return fmt.Errorf("recover controller: %w", err)
	}
	switch cmd {
	case "write":
		if err := doWrite(ctl, rest); err != nil {
			return err
		}
	case "read":
		return doRead(ctl, rest) // read-only: skip the image save
	case "fill":
		if err := doFill(ctl, rest); err != nil {
			return err
		}
	case "gc":
		if err := doGC(ctl, rest); err != nil {
			return err
		}
	case "checkpoint":
		if err := ctl.Checkpoint(); err != nil {
			return err
		}
		fmt.Println("checkpoint complete")
	case "stats":
		return doStats(ctl, rest) // read-only: skip the image save
	case "session-open":
		sid, err := ctl.OpenSession()
		if err != nil {
			return err
		}
		fmt.Printf("session %d opened (survives crashes; WSNs start at 1)\n", sid)
	case "swrite":
		if err := doSessionWrite(ctl, rest); err != nil {
			return err
		}
	case "session-status":
		return doSessionStatus(ctl, rest) // read-only
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	// Checkpoint before saving so the next Open replays little.
	if err := ctl.Checkpoint(); err != nil {
		return err
	}
	return dev.SaveFile(img)
}

func doFormat(img string, args []string) error {
	fs := flag.NewFlagSet("format", flag.ExitOnError)
	channels := fs.Int("channels", 4, "flash channels")
	eblocks := fs.Int("eblocks", 64, "eblocks per channel")
	_ = fs.Parse(args)
	geo := flash.Geometry{
		Channels:          *channels,
		EBlocksPerChannel: *eblocks,
		EBlockBytes:       1 << 20,
		WBlockBytes:       32 << 10,
		RBlockBytes:       4 << 10,
	}
	dev, err := flash.NewDevice(geo, flash.Latency{})
	if err != nil {
		return err
	}
	if _, err := core.Format(dev, core.DefaultConfig()); err != nil {
		return err
	}
	if err := dev.SaveFile(img); err != nil {
		return err
	}
	fmt.Printf("formatted %s: %d channels x %d eblocks (%d MB)\n",
		img, geo.Channels, geo.EBlocksPerChannel, geo.CapacityBytes()>>20)
	return nil
}

// doTrace fetches a running eleosd's flight recorder over TCP and
// renders it: a per-batch text timeline by default, or Chrome
// trace_event JSON (loadable in chrome://tracing / Perfetto) with
// -chrome.
func doTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addrFlag := fs.String("addr", "127.0.0.1:9420", "eleosd address")
	chrome := fs.String("chrome", "", "write Chrome trace_event JSON to FILE ('-' for stdout) instead of the text timeline")
	_ = fs.Parse(args)
	cl, err := client.Dial(*addrFlag, client.Options{
		DialTimeout:    3 * time.Second,
		RequestTimeout: 10 * time.Second,
		MaxAttempts:    3,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	d, err := cl.TraceDump()
	if err != nil {
		return err
	}
	return renderTrace(os.Stdout, d, *chrome)
}

// doGet reads pages from a running eleosd: one LPID uses read_page, two
// or more use a single read_batch round trip (scatter-gathered across
// the server's flash channels). Unmapped LPIDs are reported per page,
// not as a command failure.
func doGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	addrFlag := fs.String("addr", "127.0.0.1:9420", "eleosd address")
	raw := fs.Bool("raw", false, "write the raw page bytes of a single LPID to stdout")
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("get needs lpid arguments")
	}
	var lpids []addr.LPID
	for _, a := range fs.Args() {
		lpid, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			return fmt.Errorf("bad lpid %q: %v", a, err)
		}
		lpids = append(lpids, addr.LPID(lpid))
	}
	cl, err := client.Dial(*addrFlag, client.Options{
		DialTimeout:    3 * time.Second,
		RequestTimeout: 10 * time.Second,
		MaxAttempts:    3,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	var pages [][]byte
	if len(lpids) == 1 {
		data, err := cl.Read(lpids[0])
		switch {
		case core.IsNotFound(err):
			pages = [][]byte{nil}
		case err != nil:
			return err
		default:
			pages = [][]byte{data}
		}
	} else {
		if pages, err = cl.ReadBatch(lpids); err != nil {
			return err
		}
	}
	return renderGet(os.Stdout, lpids, pages, *raw)
}

// renderGet prints fetched pages; split from doGet so tests can feed
// fixture pages without a server.
func renderGet(stdout io.Writer, lpids []addr.LPID, pages [][]byte, raw bool) error {
	if raw {
		if len(lpids) != 1 {
			return fmt.Errorf("-raw needs exactly one lpid")
		}
		if pages[0] == nil {
			return fmt.Errorf("lpid %d not found", lpids[0])
		}
		_, err := stdout.Write(pages[0])
		return err
	}
	for i, lpid := range lpids {
		if pages[i] == nil {
			fmt.Fprintf(stdout, "lpid %d: not found\n", lpid)
			continue
		}
		fmt.Fprintf(stdout, "lpid %d (%d bytes stored): %q\n",
			lpid, len(pages[i]), strings.TrimRight(string(pages[i]), "\x00"))
	}
	return nil
}

// renderTrace writes the dump in the selected format; split from doTrace
// so tests can feed a fixture dump without a server.
func renderTrace(stdout io.Writer, d trace.Dump, chromePath string) error {
	switch chromePath {
	case "":
		return trace.Timeline(stdout, d)
	case "-":
		return trace.ChromeJSON(stdout, d)
	}
	f, err := os.Create(chromePath)
	if err != nil {
		return err
	}
	if err := trace.ChromeJSON(f, d); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d trace events (%d dropped) to %s\n", len(d.Events), d.Dropped, chromePath)
	return nil
}

func doWrite(ctl *core.Controller, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("write needs <lpid>=<text> arguments")
	}
	var pages []core.LPage
	for _, a := range args {
		lpidStr, text, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("bad page spec %q (want lpid=text)", a)
		}
		lpid, err := strconv.ParseUint(lpidStr, 10, 64)
		if err != nil {
			return fmt.Errorf("bad lpid %q: %v", lpidStr, err)
		}
		pages = append(pages, core.LPage{LPID: addr.LPID(lpid), Data: []byte(text)})
	}
	if err := ctl.WriteBatch(0, 0, pages); err != nil {
		return err
	}
	fmt.Printf("wrote %d pages in one batch\n", len(pages))
	return nil
}

func doRead(ctl *core.Controller, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("read needs lpid arguments")
	}
	for _, a := range args {
		lpid, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			return fmt.Errorf("bad lpid %q: %v", a, err)
		}
		data, err := ctl.Read(addr.LPID(lpid))
		if err != nil {
			return err
		}
		fmt.Printf("lpid %d (%d bytes stored): %q\n", lpid, len(data), strings.TrimRight(string(data), "\x00"))
	}
	return nil
}

func doFill(ctl *core.Controller, args []string) error {
	fs := flag.NewFlagSet("fill", flag.ExitOnError)
	pages := fs.Int("pages", 100, "pages to write")
	size := fs.Int("size", 2000, "page size in bytes")
	seed := fs.Int64("seed", 1, "rng seed")
	_ = fs.Parse(args)
	rng := rand.New(rand.NewSource(*seed))
	var batch []core.LPage
	for i := 0; i < *pages; i++ {
		data := make([]byte, *size)
		rng.Read(data)
		batch = append(batch, core.LPage{LPID: addr.LPID(1000 + rng.Intn(*pages)), Data: data})
		if len(batch) >= 64 {
			if err := ctl.WriteBatch(0, 0, batch); err != nil {
				return err
			}
			batch = nil
		}
	}
	if len(batch) > 0 {
		if err := ctl.WriteBatch(0, 0, batch); err != nil {
			return err
		}
	}
	fmt.Printf("filled %d pages of %d bytes\n", *pages, *size)
	return nil
}

func doGC(ctl *core.Controller, args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	channel := fs.Int("channel", -1, "channel to collect (-1 = all)")
	_ = fs.Parse(args)
	before := ctl.Stats()
	if *channel >= 0 {
		if err := ctl.GCNow(*channel); err != nil {
			return err
		}
	} else {
		for ch := 0; ch < ctl.Geometry().Channels; ch++ {
			if err := ctl.GCNow(ch); err != nil {
				return err
			}
		}
	}
	after := ctl.Stats()
	fmt.Printf("gc: %d rounds, %d pages moved, %d eblocks freed\n",
		after.GCRounds-before.GCRounds, after.GCPagesMoved-before.GCPagesMoved,
		after.GCEBlocksFreed-before.GCEBlocksFreed)
	return nil
}

func doSessionWrite(ctl *core.Controller, args []string) error {
	fs := flag.NewFlagSet("swrite", flag.ExitOnError)
	sid := fs.Uint64("sid", 0, "session id")
	wsn := fs.Uint64("wsn", 0, "write sequence number")
	_ = fs.Parse(args)
	if *sid == 0 || *wsn == 0 {
		return fmt.Errorf("swrite needs -sid and -wsn")
	}
	var pages []core.LPage
	for _, a := range fs.Args() {
		lpidStr, text, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("bad page spec %q", a)
		}
		lpid, err := strconv.ParseUint(lpidStr, 10, 64)
		if err != nil {
			return err
		}
		pages = append(pages, core.LPage{LPID: addr.LPID(lpid), Data: []byte(text)})
	}
	if len(pages) == 0 {
		return fmt.Errorf("swrite needs page specs")
	}
	high, _ := ctl.SessionHighestWSN(*sid)
	if err := ctl.WriteBatch(*sid, *wsn, pages); err != nil {
		return err
	}
	if *wsn <= high {
		fmt.Printf("WSN %d already applied (highest %d): acknowledged without re-applying\n", *wsn, high)
	} else {
		fmt.Printf("session %d applied WSN %d (%d pages)\n", *sid, *wsn, len(pages))
	}
	return nil
}

func doSessionStatus(ctl *core.Controller, args []string) error {
	fs := flag.NewFlagSet("session-status", flag.ExitOnError)
	sid := fs.Uint64("sid", 0, "session id")
	_ = fs.Parse(args)
	high, err := ctl.SessionHighestWSN(*sid)
	if err != nil {
		return err
	}
	fmt.Printf("session %d: highest applied WSN = %d\n", *sid, high)
	return nil
}

func doStats(ctl *core.Controller, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the full metrics snapshot as JSON")
	fs.String("addr", "", "eleosd address (handled in doStatsRemote)")
	_ = fs.Parse(args)
	snap := ctl.MetricsSnapshot()
	if *jsonOut {
		b, err := marshalSnapshot(snap)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	printStats(ctl)
	printHealth(os.Stdout, ctl.DeviceHealth())
	printTenants(os.Stdout, snap)
	printMetrics(os.Stdout, snap)
	return nil
}

// hasAddrFlag reports whether the raw argument list selects network mode.
func hasAddrFlag(args []string) bool {
	for _, a := range args {
		if a == "-addr" || a == "--addr" ||
			strings.HasPrefix(a, "-addr=") || strings.HasPrefix(a, "--addr=") {
			return true
		}
	}
	return false
}

// doStatsRemote is `stats -addr`: one stats_full round trip to a running
// eleosd, rendering the same health/tenant/metrics sections as the local
// mode plus the server's exporter labels.
func doStatsRemote(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addrFlag := fs.String("addr", "127.0.0.1:9420", "eleosd address")
	jsonOut := fs.Bool("json", false, "emit the full metrics snapshot as JSON")
	_ = fs.Parse(args)
	cl, err := client.Dial(*addrFlag, client.Options{
		DialTimeout:    3 * time.Second,
		RequestTimeout: 10 * time.Second,
		MaxAttempts:    3,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	sf, err := cl.StatsFull()
	if err != nil {
		return err
	}
	if *jsonOut {
		b, err := marshalSnapshot(sf.Snap)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	fmt.Printf("eleosd %s", *addrFlag)
	if pol := sf.Snap.Label("gc.policy"); pol != "" {
		fmt.Printf("  (gc policy %s)", pol)
	}
	fmt.Println()
	printHealth(os.Stdout, sf.Health)
	printTenants(os.Stdout, sf.Snap)
	printMetrics(os.Stdout, sf.Snap)
	return nil
}

// errTopDone ends the watch stream after `top -n N` frames.
var errTopDone = errors.New("eleosctl: frame budget reached")

// doTop is the live dashboard: subscribe to watch_stats and redraw the
// terminal from each pushed payload. Rates come from the delta between
// successive pushes (health.Compute), so the first frame appears after
// two pushes.
func doTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addrFlag := fs.String("addr", "127.0.0.1:9420", "eleosd address")
	interval := fs.Duration("interval", time.Second, "sampling interval (server clamps to [10ms, 60s])")
	frames := fs.Int("n", 0, "exit after N rendered frames (0: run until interrupted)")
	plain := fs.Bool("plain", false, "append frames instead of redrawing (for logs and pipes)")
	_ = fs.Parse(args)
	cl, err := client.Dial(*addrFlag, client.Options{
		DialTimeout:    3 * time.Second,
		RequestTimeout: 10 * time.Second,
		MaxAttempts:    3,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var prev netproto.StatsFull
	var prevAt time.Time
	have := false
	rendered := 0
	err = cl.WatchStats(ctx, *interval, func(sf netproto.StatsFull) error {
		now := time.Now()
		if have {
			if !*plain {
				fmt.Print("\x1b[H\x1b[2J") // home + clear: redraw in place
			}
			fmt.Print(renderTop(*addrFlag, prev, sf, now.Sub(prevAt)))
			rendered++
			if *frames > 0 && rendered >= *frames {
				return errTopDone
			}
		}
		prev, prevAt, have = sf, now, true
		return nil
	})
	if errors.Is(err, errTopDone) || errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// renderTop builds one dashboard frame from two successive watch_stats
// payloads. Pure (no clock, no I/O) so tests can pin it with fixtures.
func renderTop(target string, prev, cur netproto.StatsFull, dt time.Duration) string {
	var sb strings.Builder
	r := health.Compute(prev.Snap, cur.Snap, dt)
	fmt.Fprintf(&sb, "eleos top — %s", target)
	if pol := cur.Snap.Label("gc.policy"); pol != "" {
		fmt.Fprintf(&sb, "   gc=%s", pol)
	}
	fmt.Fprintf(&sb, "   interval=%s\n\n", dt.Round(time.Millisecond))
	fmt.Fprintf(&sb, "write   %8.2f MB/s user  %8.2f MB/s flash   WAF %5.2f   %7.0f batches/s %9.0f pages/s\n",
		r.UserMBps, r.FlashMBps, r.WAF, r.BatchesPS, r.PagesPS)
	fmt.Fprintf(&sb, "gc      %8s moved  %4d eblocks freed   efficiency %s/eblock\n",
		fmtBytes(r.GCMovedBytes), r.GCFreed, fmtBytes(int64(r.GCEfficiency)))
	fmt.Fprintf(&sb, "read    %8.0f reads/s   cache hit %5.1f%%\n", r.ReadsPS, 100*r.CacheHitRate)
	if r.ThrottledPS > 0 {
		fmt.Fprintf(&sb, "qos     %8.0f throttled/s\n", r.ThrottledPS)
	}
	sb.WriteString("\n")
	printHealth(&sb, cur.Health)
	printTenants(&sb, cur.Snap)
	return sb.String()
}

// printHealth renders the device-health census: space split, EBLOCK
// population, and the wear summary with its histogram.
func printHealth(w io.Writer, h health.DeviceHealth) {
	if h.EBlocksTotal == 0 {
		return
	}
	fmt.Fprintf(w, "space:  free %s  valid %s  dead %s\n",
		fmtBytes(h.FreeBytes), fmtBytes(h.ValidBytes), fmtBytes(h.DeadBytes))
	fmt.Fprintf(w, "eblocks: %d total  %d free  %d open  %d used  %d bad  %d reserved\n",
		h.EBlocksTotal, h.FreeEBlocks, h.OpenEBlocks, h.UsedEBlocks, h.BadEBlocks, h.ReservedEBlocks)
	avg := float64(h.EraseTotal) / float64(h.EBlocksTotal)
	fmt.Fprintf(w, "wear:   erases min %d / avg %.1f / max %d (total %d)\n",
		h.EraseMin, avg, h.EraseMax, h.EraseTotal)
	// One histogram line each, only when they carry signal.
	if h.EraseMax > 0 {
		fmt.Fprintf(w, "  erase histogram: ")
		for i, n := range h.EraseHist {
			if n == 0 {
				continue
			}
			fmt.Fprintf(w, "%s:%d ", eraseBucketLabel(i), n)
		}
		fmt.Fprintln(w)
	}
	if h.UsedEBlocks > 0 {
		fmt.Fprintf(w, "  valid-utilization deciles:")
		for _, n := range h.UtilHist {
			fmt.Fprintf(w, " %d", n)
		}
		fmt.Fprintln(w)
	}
}

// eraseBucketLabel names one EraseHist bucket (see health.EraseBucket).
func eraseBucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	lo := int64(1) << (i - 1)
	if i == health.EraseHistBuckets-1 {
		return fmt.Sprintf("%d+", lo)
	}
	hi := (int64(1) << i) - 1
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// printTenants renders the per-tenant QoS and write-attribution table
// merged from the qos.* and write.tenant.* instruments.
func printTenants(w io.Writer, snap metrics.Snapshot) {
	rows := health.Tenants(snap)
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "tenants:\n")
	fmt.Fprintf(w, "  %-16s %12s %10s %12s %10s %10s\n",
		"TENANT", "WRITTEN", "PAGES", "ADMITTED", "THROTTLED", "INFLIGHT")
	for _, t := range rows {
		fmt.Fprintf(w, "  %-16s %12s %10d %12s %10d %10s\n",
			t.Tenant, fmtBytes(t.WriteBytes), t.WritePages,
			fmtBytes(t.AdmittedBytes), t.Throttled, fmtBytes(t.InflightBytes))
	}
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// marshalSnapshot renders a metrics snapshot as indented JSON. The schema
// is the JSON encoding of metrics.Snapshot, documented in DESIGN.md §7;
// the golden test pins it.
func marshalSnapshot(s metrics.Snapshot) ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// printMetrics renders the registry snapshot as a human-readable table:
// counters and gauges one per line, histograms with count, mean and the
// interpolated p50/p95/p99.
func printMetrics(w io.Writer, s metrics.Snapshot) {
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) == 0 {
		return
	}
	fmt.Fprintf(w, "metrics:\n")
	for _, c := range s.Counters {
		fmt.Fprintf(w, "  %-34s %14d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "  %-34s %14d (gauge)\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(w, "  %-34s count %-8d mean %-10.0f p50 %-10.0f p95 %-10.0f p99 %.0f\n",
			h.Name, h.Count, h.Mean(), h.P50, h.P95, h.P99)
	}
}

func printStats(ctl *core.Controller) {
	s := ctl.Stats()
	d := ctl.Device().Stats()
	fmt.Printf("controller:\n")
	fmt.Printf("  batches written      %10d\n", s.BatchesWritten)
	fmt.Printf("  pages written        %10d\n", s.PagesWritten)
	fmt.Printf("  bytes accepted       %10d\n", s.BytesAccepted)
	fmt.Printf("  bytes stored         %10d\n", s.BytesStored)
	fmt.Printf("  reads                %10d (rblocks %d)\n", s.Reads, s.ReadRBlocks)
	fmt.Printf("  io commands          %10d\n", s.IOCommands)
	fmt.Printf("  log records/forces   %10d / %d\n", s.LogRecords, s.LogForces)
	fmt.Printf("  gc rounds/moved      %10d / %d\n", s.GCRounds, s.GCPagesMoved)
	fmt.Printf("  migrations           %10d\n", s.Migrations)
	fmt.Printf("  checkpoints          %10d\n", s.Checkpoints)
	fmt.Printf("media:\n")
	fmt.Printf("  wblocks programmed   %10d\n", d.WBlocksWritten)
	fmt.Printf("  rblocks read         %10d\n", d.RBlocksRead)
	fmt.Printf("  eblocks erased       %10d\n", d.EBlocksErased)
	fmt.Printf("free space per channel:")
	for ch := 0; ch < ctl.Geometry().Channels; ch++ {
		fmt.Printf(" %d:%.0f%%", ch, 100*ctl.FreeFraction(ch))
	}
	fmt.Println()
}
