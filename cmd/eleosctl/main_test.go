package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eleos/internal/health"
	"eleos/internal/metrics"
	"eleos/internal/netproto"
	"eleos/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixtureSnapshot builds a fully deterministic registry snapshot covering
// every shape the renderer handles: counters, a negative gauge, and
// histograms with both duration and size bounds (including an overflow
// observation beyond the last bucket bound).
func fixtureSnapshot() metrics.Snapshot {
	reg := metrics.New()
	reg.Counter("core.write.batches").Add(128)
	reg.Counter("core.write.pages").Add(512)
	reg.Counter("flash.programs").Add(300)
	reg.Counter("wal.appends").Add(900)
	reg.Counter("read.reads").Add(2048)
	reg.Counter("read.cache_hits").Add(1500)
	reg.Counter("read.flash_loads").Add(548)
	reg.Gauge("server.active_conns").Set(3)
	reg.Gauge("flash.chan0.queue_depth").Set(-1)
	reg.Gauge("read.cached_bytes").Set(262144)
	rh := reg.Histogram("read.ns", metrics.DurationBounds())
	for _, v := range []int64{800, 1200, 4500, 250_000} {
		rh.Observe(v)
	}
	h := reg.Histogram("core.write.init_ns", metrics.DurationBounds())
	for _, v := range []int64{1500, 2100, 9000, 60_000, 1 << 45} {
		h.Observe(v)
	}
	g := reg.Histogram("wal.group_commit_records", metrics.SizeBounds())
	for _, v := range []int64{1, 2, 2, 7, 31} {
		g.Observe(v)
	}
	return reg.Snapshot()
}

// TestStatsJSONGolden pins the `eleosctl stats -json` schema: the JSON
// encoding of metrics.Snapshot documented in DESIGN.md §7. A diff here
// means the wire-visible schema changed and the docs (and any consumers)
// must change with it.
func TestStatsJSONGolden(t *testing.T) {
	got, err := marshalSnapshot(fixtureSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "stats_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/eleosctl -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stats -json output diverged from %s\n got: %s\nwant: %s\n(run `go test ./cmd/eleosctl -update` if the change is intentional)", golden, got, want)
	}
}

// fixtureDump builds a deterministic flight-recorder dump covering every
// rendering shape: a full traced batch (spans + instants), a server
// request span, background GC and WAL events, and a dropped count.
func fixtureDump() trace.Dump {
	return trace.Dump{
		EpochUnixNano: 1_700_000_000_000_000_000,
		Dropped:       3,
		Events: []trace.Event{
			{Seq: 4, Kind: trace.KConnOpen, TS: 500, SID: 1},
			{Seq: 5, Kind: trace.KBatchStart, TS: 1_000, TraceID: 42, SID: 7, WSN: 9, Arg1: 3},
			{Seq: 6, Kind: trace.KClaim, TS: 1_000, Dur: 2_500, TraceID: 42, SID: 7, WSN: 9},
			{Seq: 7, Kind: trace.KInit, TS: 3_500, Dur: 10_000, TraceID: 42, SID: 7, WSN: 9},
			{Seq: 8, Kind: trace.KFlashProgram, TS: 14_000, Dur: 90_000, Arg1: 2, Arg2: 17},
			{Seq: 9, Kind: trace.KProgramWait, TS: 13_500, Dur: 95_000, TraceID: 42, SID: 7, WSN: 9},
			{Seq: 10, Kind: trace.KWalForce, TS: 110_000, Dur: 40_000, Arg1: 1, Arg2: 5},
			{Seq: 11, Kind: trace.KForceWait, TS: 108_500, Dur: 43_000, TraceID: 42, SID: 7, WSN: 9},
			{Seq: 12, Kind: trace.KInstall, TS: 151_500, Dur: 4_000, TraceID: 42, SID: 7, WSN: 9},
			{Seq: 13, Kind: trace.KBatchEnd, TS: 155_500, TraceID: 42, SID: 7, WSN: 9},
			{Seq: 14, Kind: trace.KRequest, TS: 900, Dur: 155_000, SID: 1, Arg1: 3, Arg2: 4096},
			{Seq: 15, Kind: trace.KGC, TS: 200_000, Dur: 1_000_000, Arg1: 1, Arg2: 33},
			{Seq: 16, Kind: trace.KConnClose, TS: 1_300_000, SID: 1},
		},
	}
}

// TestTraceChromeGolden pins the Chrome trace_event rendering byte for
// byte: what `eleosctl trace -chrome out.json` writes is what
// chrome://tracing loads, so a diff here is a consumer-visible format
// change.
func TestTraceChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := renderTrace(&buf, fixtureDump(), "-"); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("unexpected chrome document: %+v", doc)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/eleosctl -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chrome trace output diverged from %s\n got: %s\nwant: %s\n(run `go test ./cmd/eleosctl -update` if the change is intentional)", golden, got, want)
	}
}

// TestTraceTimelineRender smoke-checks the default text rendering and the
// -chrome FILE path.
func TestTraceTimelineRender(t *testing.T) {
	var buf bytes.Buffer
	if err := renderTrace(&buf, fixtureDump(), ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace 42", "claim", "program_wait", "install", "batch_end", "untraced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}

	file := filepath.Join(t.TempDir(), "out.json")
	buf.Reset()
	if err := renderTrace(&buf, fixtureDump(), file); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote 13 trace events (3 dropped)") {
		t.Fatalf("unexpected status line: %q", buf.String())
	}
	onDisk, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var chromeBuf bytes.Buffer
	if err := renderTrace(&chromeBuf, fixtureDump(), "-"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, chromeBuf.Bytes()) {
		t.Fatal("-chrome FILE and -chrome - renderings differ")
	}
}

// TestPrintMetricsTable smoke-checks the human-readable rendering: every
// instrument appears, histograms carry quantiles, and an empty snapshot
// prints nothing.
func TestPrintMetricsTable(t *testing.T) {
	var buf bytes.Buffer
	printMetrics(&buf, fixtureSnapshot())
	out := buf.String()
	for _, want := range []string{
		"metrics:",
		"core.write.batches", "128",
		"server.active_conns", "(gauge)",
		"core.write.init_ns", "wal.group_commit_records",
		"p50", "p95", "p99",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	printMetrics(&buf, metrics.Snapshot{})
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot should render nothing, got %q", buf.String())
	}
}

// watchFixture builds a pair of stats_full payloads 1s apart with known
// deltas so renderTop's rate math is pinned exactly: 1 MB/s user,
// 2 MB/s flash (WAF 2.00), 10 batches/s, and one reclaimed EBLOCK.
func watchFixture() (prev, cur netproto.StatsFull) {
	build := func(user, flash, batches, moved, freed int64) netproto.StatsFull {
		reg := metrics.New()
		reg.Counter("core.write.bytes_accepted").Add(user)
		reg.Counter("flash.programmed_bytes").Add(flash)
		reg.Counter("core.write.batches").Add(batches)
		reg.Counter("core.write.pages").Add(batches * 4)
		reg.Counter("core.gc.bytes_moved").Add(moved)
		reg.Counter("core.gc.eblocks_freed").Add(freed)
		reg.Counter("read.reads").Add(batches)
		reg.Counter("read.cache_hits").Add(batches - 20)
		reg.Counter("read.cache_misses").Add(20)
		reg.Counter("qos.default.admitted_bytes").Add(user)
		reg.Counter("qos.default.throttled").Add(freed) // any delta > 0
		reg.Counter("write.tenant.default.bytes").Add(user)
		reg.Counter("write.tenant.default.pages").Add(batches * 4)
		snap := reg.Snapshot()
		snap.Labels = append(snap.Labels, metrics.Label{Key: "gc.policy", Value: "greedy"})
		return netproto.StatsFull{
			Snap: snap,
			Health: health.DeviceHealth{
				EBlocksTotal: 64, FreeEBlocks: 32, OpenEBlocks: 4,
				UsedEBlocks: 26, BadEBlocks: 1, ReservedEBlocks: 1,
				EraseTotal: 128, EraseMin: 0, EraseMax: 9,
				EraseHist:  [health.EraseHistBuckets]int64{10, 20, 30, 4},
				FreeBytes:  64 << 20, ValidBytes: 48 << 20, DeadBytes: 16 << 20,
				UtilHist: [health.UtilHistBuckets]int64{1, 0, 2, 0, 0, 5, 0, 0, 3, 15},
			},
		}
	}
	prev = build(5<<20, 10<<20, 100, 1<<20, 2)
	cur = build(6<<20, 12<<20, 110, 2<<20, 3)
	return prev, cur
}

// TestRenderTop pins one dashboard frame end to end: the rate lines
// derived from the payload deltas, the health census, and the tenant
// table all render from a pure function with no server.
func TestRenderTop(t *testing.T) {
	prev, cur := watchFixture()
	out := renderTop("10.0.0.1:9420", prev, cur, time.Second)
	for _, want := range []string{
		"eleos top — 10.0.0.1:9420",
		"gc=greedy",
		"WAF  2.00",           // 2 MB flash / 1 MB user
		"1.00 MB/s user",      // Δ1 MB over 1s
		"2.00 MB/s flash",     // Δ2 MB over 1s
		"10 batches/s",        // Δ10 over 1s
		"1 eblocks freed",     // Δ1
		"1.0 MB moved",        // Δ1 MB GC traffic
		"throttled/s",         // nonzero throttle delta renders the qos line
		"space:  free 64.0 MB  valid 48.0 MB  dead 16.0 MB",
		"eblocks: 64 total  32 free  4 open  26 used  1 bad  1 reserved",
		"erases min 0 / avg 2.0 / max 9 (total 128)",
		"0:10 1:20 2-3:30 4-7:4",
		"valid-utilization deciles: 1 0 2 0 0 5 0 0 3 15",
		"TENANT",
		"default",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderTop missing %q:\n%s", want, out)
		}
	}
}

// TestPrintHealthEmpty checks the zero-value census renders nothing, so
// local `stats` against a fresh image stays quiet.
func TestPrintHealthEmpty(t *testing.T) {
	var buf bytes.Buffer
	printHealth(&buf, health.DeviceHealth{})
	if buf.Len() != 0 {
		t.Fatalf("empty health should render nothing, got %q", buf.String())
	}
	printTenants(&buf, metrics.Snapshot{})
	if buf.Len() != 0 {
		t.Fatalf("empty tenant table should render nothing, got %q", buf.String())
	}
}

// TestFmtBytes pins the unit thresholds.
func TestFmtBytes(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{
		{0, "0 B"}, {1023, "1023 B"}, {1024, "1.0 KB"},
		{5 << 20, "5.0 MB"}, {3 << 30, "3.0 GB"},
	} {
		if got := fmtBytes(tc.n); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

// TestHasAddrFlag pins network-mode detection for the stats command.
func TestHasAddrFlag(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want bool
	}{
		{nil, false},
		{[]string{"-json"}, false},
		{[]string{"-addr", "x:1"}, true},
		{[]string{"-addr=x:1"}, true},
		{[]string{"--addr", "x:1"}, true},
		{[]string{"-json", "--addr=x:1"}, true},
	} {
		if got := hasAddrFlag(tc.args); got != tc.want {
			t.Errorf("hasAddrFlag(%v) = %v, want %v", tc.args, got, tc.want)
		}
	}
}
