package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eleos/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixtureSnapshot builds a fully deterministic registry snapshot covering
// every shape the renderer handles: counters, a negative gauge, and
// histograms with both duration and size bounds (including an overflow
// observation beyond the last bucket bound).
func fixtureSnapshot() metrics.Snapshot {
	reg := metrics.New()
	reg.Counter("core.write.batches").Add(128)
	reg.Counter("core.write.pages").Add(512)
	reg.Counter("flash.programs").Add(300)
	reg.Counter("wal.appends").Add(900)
	reg.Gauge("server.active_conns").Set(3)
	reg.Gauge("flash.chan0.queue_depth").Set(-1)
	h := reg.Histogram("core.write.init_ns", metrics.DurationBounds())
	for _, v := range []int64{1500, 2100, 9000, 60_000, 1 << 45} {
		h.Observe(v)
	}
	g := reg.Histogram("wal.group_commit_records", metrics.SizeBounds())
	for _, v := range []int64{1, 2, 2, 7, 31} {
		g.Observe(v)
	}
	return reg.Snapshot()
}

// TestStatsJSONGolden pins the `eleosctl stats -json` schema: the JSON
// encoding of metrics.Snapshot documented in DESIGN.md §7. A diff here
// means the wire-visible schema changed and the docs (and any consumers)
// must change with it.
func TestStatsJSONGolden(t *testing.T) {
	got, err := marshalSnapshot(fixtureSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "stats_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/eleosctl -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stats -json output diverged from %s\n got: %s\nwant: %s\n(run `go test ./cmd/eleosctl -update` if the change is intentional)", golden, got, want)
	}
}

// TestPrintMetricsTable smoke-checks the human-readable rendering: every
// instrument appears, histograms carry quantiles, and an empty snapshot
// prints nothing.
func TestPrintMetricsTable(t *testing.T) {
	var buf bytes.Buffer
	printMetrics(&buf, fixtureSnapshot())
	out := buf.String()
	for _, want := range []string{
		"metrics:",
		"core.write.batches", "128",
		"server.active_conns", "(gauge)",
		"core.write.init_ns", "wal.group_commit_records",
		"p50", "p95", "p99",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	printMetrics(&buf, metrics.Snapshot{})
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot should render nothing, got %q", buf.String())
	}
}
