// Command eleosd serves an ELEOS controller over TCP — the network
// front-end that turns the reproduction into a deployable service.
// Hosts connect with internal/client (or anything speaking the netproto
// framing) and issue open/close session, flush_batch, read and stats
// commands; concurrent connections feed the controller's parallel write
// pipeline directly.
//
// Usage:
//
//	eleosd [-addr :9420] [-img dev.img] [-format] [flags]
//
// With -img, the device is loaded from (and on shutdown saved back to)
// an eleosctl-compatible image file; -format creates it fresh. Without
// -img an in-memory device is formatted, useful for benchmarks and
// demos. SIGINT/SIGTERM triggers a graceful drain: stop accepting,
// finish in-flight requests, checkpoint, then save the image — so a
// restart recovers with (almost) no log replay, and even a kill -9 loses
// only unacknowledged batches.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":9420", "TCP listen address")
		img        = flag.String("img", "", "device image file (empty: in-memory device)")
		format     = flag.Bool("format", false, "format a fresh device instead of recovering")
		channels   = flag.Int("channels", 8, "flash channels (format only)")
		eblocks    = flag.Int("eblocks", 64, "eblocks per channel (format only)")
		maxConns   = flag.Int("max-conns", 256, "concurrent connection limit")
		inflightMB = flag.Int("max-inflight-mb", 64, "in-flight batch bytes admitted across all connections (MB)")
		drainSecs  = flag.Int("drain-timeout", 30, "graceful drain timeout in seconds")
		debugAddr  = flag.String("debug-addr", "", "HTTP debug listen address (pprof, /metrics, /debug/trace; empty: off)")
		slowBatch  = flag.Duration("slow-batch", 0, "log flush_batch requests slower than this with their trace breakdown (0: off)")
		coalesce   = flag.Duration("coalesce", 0, "merge small concurrent flushes into one controller batch, waiting up to this window (0: off)")
		readCache  = flag.Int("read-cache-mb", 0, "byte-sized tiered read cache capacity in MB (0: off)")
	)
	flag.Parse()
	if err := run(*addr, *img, *format, *channels, *eblocks, *maxConns, *inflightMB, *drainSecs, *readCache, *debugAddr, *slowBatch, *coalesce); err != nil {
		fmt.Fprintf(os.Stderr, "eleosd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, img string, format bool, channels, eblocks, maxConns, inflightMB, drainSecs, readCacheMB int, debugAddr string, slowBatch, coalesce time.Duration) error {
	dev, ctl, err := openDevice(img, format, channels, eblocks, readCacheMB)
	if err != nil {
		return err
	}
	srv := server.New(ctl, server.Config{
		MaxConns:           maxConns,
		MaxInflightBytes:   int64(inflightMB) << 20,
		SlowBatchThreshold: slowBatch,
		Coalesce:           server.CoalesceConfig{Enabled: coalesce > 0, Window: coalesce},
	})
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		log.Printf("eleosd: debug endpoint on http://%s (pprof, /metrics, /debug/trace)", dln.Addr())
		go func() {
			if err := http.Serve(dln, srv.DebugHandler()); err != nil {
				log.Printf("eleosd: debug endpoint: %v", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	geo := ctl.Geometry()
	log.Printf("eleosd: serving %d-channel x %d-eblock device (%d MB) on %s",
		geo.Channels, geo.EBlocksPerChannel, geo.CapacityBytes()>>20, ln.Addr())

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("eleosd: %v: draining (limit %ds)", sig, drainSecs)
	case err := <-serveDone:
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(drainSecs)*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("eleosd: drain: %v", err)
	}
	<-serveDone
	st := ctl.Stats()
	log.Printf("eleosd: drained: %d batches, %d pages, %d stale re-ACKs, %d checkpoints",
		st.BatchesWritten, st.PagesWritten, st.StaleWrites, st.Checkpoints)
	if img != "" {
		if err := dev.SaveFile(img); err != nil {
			return fmt.Errorf("save image: %w", err)
		}
		log.Printf("eleosd: image saved to %s", img)
	}
	return nil
}

func openDevice(img string, format bool, channels, eblocks, readCacheMB int) (*flash.Device, *core.Controller, error) {
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 16 << 20
	cfg.ReadCacheBytes = int64(readCacheMB) << 20
	if img != "" && !format {
		dev, err := flash.LoadFile(img, flash.TypicalNANDLatency())
		if err != nil {
			return nil, nil, fmt.Errorf("load %s (use -format to create): %w", img, err)
		}
		ctl, err := core.Open(dev, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("recover controller: %w", err)
		}
		return dev, ctl, nil
	}
	geo := flash.Geometry{
		Channels:          channels,
		EBlocksPerChannel: eblocks,
		EBlockBytes:       1 << 20,
		WBlockBytes:       32 << 10,
		RBlockBytes:       4 << 10,
	}
	dev, err := flash.NewDevice(geo, flash.TypicalNANDLatency())
	if err != nil {
		return nil, nil, err
	}
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		return nil, nil, err
	}
	return dev, ctl, nil
}
