// Command benchrunner regenerates the paper's tables and figures (§IX)
// and prints them alongside the paper's reference numbers.
//
// Usage:
//
//	benchrunner [flags] <experiment>
//
// Experiments: fig1, fig9, table2, fig10a, fig10b, fig10c, readheavy,
// durability, ablation, concurrent, network, metricsoverhead,
// traceoverhead, hotpath, chaos, ycsbnet, all. All but concurrent, network,
// hotpath, chaos and the overhead pair replay single-threaded and report
// virtual device time; concurrent exercises the parallel write pipeline
// in-process and network drives it over loopback TCP through eleosd's
// front-end, both reporting wall-clock scaling. network records its rows
// to a JSON file (-netjson) so the service path joins the perf
// trajectory; metricsoverhead and traceoverhead compare the CPU-bound
// write path with the metrics registry (respectively the flight
// recorder) disabled vs enabled, record the delta (-mojson / -tojson),
// and can gate CI with -maxoverhead / -maxtraceoverhead. hotpath
// compares the legacy copying request loop against the pooled zero-copy
// path (and the coalescing variant), records the ratio (-hotjson), and
// gates CI with -minhotspeedup. chaos executes the seeded fault-schedule
// corpus (seeds 1..-chaosseeds) from internal/chaos, records per-seed
// coverage (-chaosjson), and exits nonzero — printing the one-command
// replay — if any schedule violates an invariant. fairness runs the
// multi-tenant noisy-neighbor experiment: a quiet tenant's flush p99
// measured solo, racing rate-shaped aggressors with per-tenant QoS
// admission on, and racing the same aggressors with QoS off (the
// control arm); it records all three (-fairjson) and gates CI with
// -maxp99inflation. waf measures end-to-end write amplification per GC
// policy across sequential and B-tree-churn arms, reconciling the
// registry's WAF against the device program ledger and the per-source
// attribution counters; it records the matrix (-wafjson) and gates CI
// with -maxwaf on the default policy's churn arm. ycsbnet runs the YCSB
// A/B/C mixes over loopback TCP through the read_page/read_batch wire
// path with the tiered read cache, plus an in-process concurrent-reader
// microbench against the global-lock baseline; it records both
// (-ynjson) and can gate CI with -minreadspeedup.
//
// The experiments run at a laptop scale (seconds each) by default; raise
// -txns / -records / -ops to approach the paper's scale. Reported
// throughput is virtual time from the resource model (see DESIGN.md); the
// *shape* — who wins and by what factor — is the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"

	"eleos/internal/core"
	"eleos/internal/harness"
	"eleos/internal/tpcc"
)

func main() {
	var (
		txns        = flag.Int("txns", 3000, "TPC-C transactions to trace (fig9/table2)")
		records     = flag.Uint64("records", 60_000, "YCSB records (fig10*)")
		ops         = flag.Int("ops", 60_000, "YCSB operations (fig10*)")
		netBatches  = flag.Int("netbatches", 200, "batches per client (network)")
		netJSON     = flag.String("netjson", "BENCH_network.json", "JSON output file for the network experiment (empty disables)")
		moBatches   = flag.Int("mobatches", 400, "batches per writer (metricsoverhead)")
		moTrials    = flag.Int("motrials", 3, "trials per arm, best kept (metricsoverhead)")
		moJSON      = flag.String("mojson", "BENCH_metrics_overhead.json", "JSON output file for the metricsoverhead experiment (empty disables)")
		maxOverhead = flag.Float64("maxoverhead", 0, "fail if metrics overhead exceeds this percent (0 disables the gate)")
		toBatches   = flag.Int("tobatches", 400, "batches per writer (traceoverhead)")
		toTrials    = flag.Int("totrials", 3, "trials per arm, best kept (traceoverhead)")
		toJSON      = flag.String("tojson", "BENCH_trace_overhead.json", "JSON output file for the traceoverhead experiment (empty disables)")
		maxTraceOH  = flag.Float64("maxtraceoverhead", 0, "fail if trace overhead exceeds this percent (0 disables the gate)")
		hotBatches  = flag.Int("hotbatches", 150, "batches per client (hotpath)")
		hotTrials   = flag.Int("hottrials", 3, "trials per arm, best kept (hotpath)")
		hotJSON     = flag.String("hotjson", "BENCH_hotpath.json", "JSON output file for the hotpath experiment (empty disables)")
		minHotRatio = flag.Float64("minhotspeedup", 0, "fail if the best pooled-path speedup vs the copy path falls below this ratio (0 disables the gate)")
		chaosSeeds  = flag.Int("chaosseeds", 4, "generated schedules to execute, seeds 1..N (chaos)")
		chaosJSON   = flag.String("chaosjson", "BENCH_chaos.json", "JSON output file for the chaos experiment (empty disables)")
		ynRecords   = flag.Uint64("ynrecords", 2000, "YCSB working-set records, all preloaded (ycsbnet)")
		ynOps       = flag.Int("ynops", 4000, "operations per mix (ycsbnet)")
		ynClients   = flag.Int("ynclients", 4, "client connections (ycsbnet)")
		ynCacheMB   = flag.Int("yncachemb", 8, "server read-cache capacity in MB (ycsbnet)")
		ynReaders   = flag.Int("ynreaders", 8, "goroutines in the concurrent-reader microbench (ycsbnet)")
		ynReads     = flag.Int("ynreadsperarm", 2000, "reads per microbench arm (ycsbnet)")
		ynJSON      = flag.String("ynjson", "BENCH_ycsbnet.json", "JSON output file for the ycsbnet experiment (empty disables)")
		minReadSpd  = flag.Float64("minreadspeedup", 0, "fail if the concurrent-reader speedup vs the global-lock baseline falls below this ratio (0 disables the gate)")
		fairBatches = flag.Int("fairbatches", 120, "quiet-tenant batches per arm (fairness)")
		fairAggr    = flag.Int("fairaggressors", 3, "noisy-tenant connections (fairness)")
		fairJSON    = flag.String("fairjson", "BENCH_fairness.json", "JSON output file for the fairness experiment (empty disables)")
		maxP99Infl  = flag.Float64("maxp99inflation", 0, "fail if the qos arm's quiet-tenant p99 exceeds this multiple of the solo baseline (0 disables the gate)")
		wafBatches  = flag.Int("wafbatches", 600, "batches per (policy, workload) arm (waf)")
		wafSeed     = flag.Int64("wafseed", 1, "workload RNG seed (waf)")
		wafJSON     = flag.String("wafjson", "BENCH_waf.json", "JSON output file for the waf experiment (empty disables)")
		maxWAF      = flag.Float64("maxwaf", 0, "fail if the default policy's btree-churn WAF exceeds this (0 disables the gate)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchrunner [flags] fig1|fig9|table2|fig10a|fig10b|fig10c|readheavy|durability|ablation|concurrent|network|metricsoverhead|traceoverhead|hotpath|chaos|ycsbnet|fairness|waf|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	exp := flag.Arg(0)
	scale := harness.DefaultScale()
	scale.TPCCTransactions = *txns
	scale.YCSBRecords = *records
	scale.YCSBOps = *ops
	mo := overheadFlags{batches: *moBatches, trials: *moTrials, json: *moJSON, maxPct: *maxOverhead}
	to := overheadFlags{batches: *toBatches, trials: *toTrials, json: *toJSON, maxPct: *maxTraceOH}
	hot := hotpathFlags{batches: *hotBatches, trials: *hotTrials, json: *hotJSON, minRatio: *minHotRatio}
	ch := chaosFlags{seeds: *chaosSeeds, json: *chaosJSON}
	yn := ycsbnetFlags{records: *ynRecords, ops: *ynOps, clients: *ynClients,
		cacheBytes: int64(*ynCacheMB) << 20, readers: *ynReaders, readsPerArm: *ynReads,
		json: *ynJSON, minSpeedup: *minReadSpd}
	fair := fairnessFlags{batches: *fairBatches, aggressors: *fairAggr, json: *fairJSON, maxInflation: *maxP99Infl}
	waf := wafFlags{batches: *wafBatches, seed: *wafSeed, json: *wafJSON, maxWAF: *maxWAF}
	if err := run(exp, scale, *netBatches, *netJSON, mo, to, hot, ch, yn, fair, waf); err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(1)
	}
}

// overheadFlags carries one overhead experiment's knobs (metricsoverhead
// and traceoverhead share the shape).
type overheadFlags struct {
	batches int
	trials  int
	json    string
	maxPct  float64 // >0: exit nonzero if overhead exceeds this percent
}

// hotpathFlags carries the hotpath experiment's knobs; its gate is a
// minimum speedup ratio rather than a maximum overhead.
type hotpathFlags struct {
	batches  int
	trials   int
	json     string
	minRatio float64 // >0: exit nonzero if pooled/copy falls below
}

// chaosFlags carries the chaos corpus experiment's knobs. It always
// gates: any schedule violating an invariant exits nonzero with the
// replay command printed.
type chaosFlags struct {
	seeds int
	json  string
}

// ycsbnetFlags carries the ycsbnet experiment's knobs; its gate is the
// concurrent-reader speedup over the global-lock baseline.
type ycsbnetFlags struct {
	records     uint64
	ops         int
	clients     int
	cacheBytes  int64
	readers     int
	readsPerArm int
	json        string
	minSpeedup  float64 // >0: exit nonzero if serial/concurrent falls below
}

// fairnessFlags carries the fairness experiment's knobs; its gate bounds
// the quiet tenant's p99 under QoS as a multiple of its solo baseline.
type fairnessFlags struct {
	batches      int
	aggressors   int
	json         string
	maxInflation float64 // >0: exit nonzero if qos p99 / solo p99 exceeds
}

// wafFlags carries the waf experiment's knobs; its gate bounds the
// default policy's btree-churn write amplification.
type wafFlags struct {
	batches int
	seed    int64
	json    string
	maxWAF  float64 // >0: exit nonzero if the gated WAF exceeds this
}

func run(exp string, scale harness.Scale, netBatches int, netJSON string, mo, to overheadFlags, hot hotpathFlags, ch chaosFlags, yn ycsbnetFlags, fair fairnessFlags, waf wafFlags) error {
	needTrace := exp == "fig9" || exp == "table2" || exp == "all"
	var tr *tpcc.Trace
	if needTrace {
		fmt.Printf("collecting TPC-C trace (%d transactions)...\n", scale.TPCCTransactions)
		var err error
		tr, err = harness.CollectDefaultTrace(scale.TPCCTransactions)
		if err != nil {
			return err
		}
		fmt.Printf("trace: %d page writes, avg %.0f bytes (paper: 1.91 KB), %.1f MB total\n\n",
			len(tr.Writes), tr.AvgSize(), float64(tr.TotalBytes())/(1<<20))
	}
	switch exp {
	case "fig1":
		harness.PrintFig1(os.Stdout)
	case "fig9":
		rows, err := harness.RunFig9(tr, scale.BufferSizes)
		if err != nil {
			return err
		}
		harness.PrintFig9(os.Stdout, tr, rows)
	case "table2":
		res, err := harness.RunTable2(tr)
		if err != nil {
			return err
		}
		harness.PrintTable2(os.Stdout, res)
	case "fig10a", "fig10b":
		rows, err := harness.RunFig10a(scale.YCSBRecords, scale.YCSBOps, scale.CachePcts)
		if err != nil {
			return err
		}
		if exp == "fig10a" {
			harness.PrintFig10a(os.Stdout, rows)
		} else {
			harness.PrintFig10b(os.Stdout, rows)
		}
	case "fig10c":
		res, err := harness.RunFig10c(scale.YCSBRecords, scale.YCSBOps)
		if err != nil {
			return err
		}
		harness.PrintFig10c(os.Stdout, res)
	case "readheavy":
		rows, err := harness.RunReadHeavy(scale.YCSBRecords, scale.YCSBOps, scale.CachePcts)
		if err != nil {
			return err
		}
		harness.PrintReadHeavy(os.Stdout, rows)
	case "durability":
		res, err := harness.RunDurability(scale.YCSBRecords, scale.YCSBOps)
		if err != nil {
			return err
		}
		harness.PrintDurability(os.Stdout, res)
	case "ablation":
		if err := harness.PrintGCAblation(os.Stdout, 900, 1); err != nil {
			return err
		}
	case "concurrent":
		rows, err := harness.RunConcurrent([]int{1, 2, 4, 8}, 300)
		if err != nil {
			return err
		}
		harness.PrintConcurrent(os.Stdout, rows)
	case "network":
		rows, err := harness.RunNetwork([]int{1, 2, 4, 8}, netBatches)
		if err != nil {
			return err
		}
		harness.PrintNetwork(os.Stdout, rows)
		if netJSON != "" {
			if err := harness.WriteNetworkJSON(netJSON, netBatches, rows); err != nil {
				return err
			}
			fmt.Printf("rows written to %s\n", netJSON)
		}
	case "metricsoverhead":
		res, err := harness.RunMetricsOverhead(4, mo.batches, mo.trials)
		if err != nil {
			return err
		}
		harness.PrintMetricsOverhead(os.Stdout, res)
		if mo.json != "" {
			if err := harness.WriteMetricsOverheadJSON(mo.json, res); err != nil {
				return err
			}
			fmt.Printf("result written to %s\n", mo.json)
		}
		if mo.maxPct > 0 && res.OverheadPct > mo.maxPct {
			return fmt.Errorf("metrics overhead %.2f%% exceeds limit %.2f%%", res.OverheadPct, mo.maxPct)
		}
	case "traceoverhead":
		res, err := harness.RunTraceOverhead(4, to.batches, to.trials)
		if err != nil {
			return err
		}
		harness.PrintTraceOverhead(os.Stdout, res)
		if to.json != "" {
			if err := harness.WriteTraceOverheadJSON(to.json, res); err != nil {
				return err
			}
			fmt.Printf("result written to %s\n", to.json)
		}
		if to.maxPct > 0 && res.OverheadPct > to.maxPct {
			return fmt.Errorf("trace overhead %.2f%% exceeds limit %.2f%%", res.OverheadPct, to.maxPct)
		}
	case "hotpath":
		res, err := harness.RunHotpath(hot.batches, hot.trials)
		if err != nil {
			return err
		}
		harness.PrintHotpath(os.Stdout, res)
		if hot.json != "" {
			if err := harness.WriteHotpathJSON(hot.json, res); err != nil {
				return err
			}
			fmt.Printf("result written to %s\n", hot.json)
		}
		if best := max(res.SpeedupPooled, res.SpeedupCoalesced); hot.minRatio > 0 && best < hot.minRatio {
			return fmt.Errorf("hotpath speedup %.2fx below minimum %.2fx", best, hot.minRatio)
		}
	case "ycsbnet":
		rows, err := harness.RunYCSBNet(yn.records, yn.ops, yn.clients, yn.cacheBytes)
		if err != nil {
			return err
		}
		sp, err := harness.RunReadSpeedup(yn.readers, yn.readsPerArm)
		if err != nil {
			return err
		}
		harness.PrintYCSBNet(os.Stdout, rows, sp)
		if yn.json != "" {
			if err := harness.WriteYCSBNetJSON(yn.json, yn.records, yn.clients, yn.cacheBytes, rows, sp); err != nil {
				return err
			}
			fmt.Printf("rows written to %s\n", yn.json)
		}
		if yn.minSpeedup > 0 && sp.Speedup < yn.minSpeedup {
			return fmt.Errorf("concurrent-reader speedup %.2fx below minimum %.2fx", sp.Speedup, yn.minSpeedup)
		}
	case "fairness":
		res, err := harness.RunFairness(fair.batches, fair.aggressors)
		if err != nil {
			return err
		}
		harness.PrintFairness(os.Stdout, res)
		if fair.json != "" {
			if err := harness.WriteFairnessJSON(fair.json, res); err != nil {
				return err
			}
			fmt.Printf("result written to %s\n", fair.json)
		}
		if fair.maxInflation > 0 && res.QoSInflation > fair.maxInflation {
			return fmt.Errorf("fairness: quiet-tenant p99 inflation %.2fx under qos exceeds limit %.2fx (solo %s, qos %s)",
				res.QoSInflation, fair.maxInflation, res.SoloP99, res.QoSP99)
		}
	case "waf":
		res, err := harness.RunWAF(
			[]core.GCPolicy{core.GCMinCostDecline, core.GCGreedy, core.GCOldest},
			waf.batches, waf.seed)
		if err != nil {
			return err
		}
		harness.PrintWAF(os.Stdout, res)
		if waf.json != "" {
			if err := harness.WriteWAFJSON(waf.json, res); err != nil {
				return err
			}
			fmt.Printf("result written to %s\n", waf.json)
		}
		if waf.maxWAF > 0 && res.GatedWAF > waf.maxWAF {
			return fmt.Errorf("waf: gated write amplification %.3f exceeds limit %.3f", res.GatedWAF, waf.maxWAF)
		}
	case "chaos":
		rep, err := harness.RunChaos(ch.seeds, func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		})
		if err != nil {
			return err
		}
		fmt.Println()
		harness.PrintChaos(os.Stdout, rep)
		if ch.json != "" {
			if err := harness.WriteChaosJSON(ch.json, rep); err != nil {
				return err
			}
			fmt.Printf("report written to %s\n", ch.json)
		}
		if rep.Failed() {
			return fmt.Errorf("chaos: %d of %d schedules violated invariants", rep.Seeds-rep.Passed, rep.Seeds)
		}
	case "all":
		harness.PrintFig1(os.Stdout)
		fmt.Println()
		rows9, err := harness.RunFig9(tr, scale.BufferSizes)
		if err != nil {
			return err
		}
		harness.PrintFig9(os.Stdout, tr, rows9)
		fmt.Println()
		t2, err := harness.RunTable2(tr)
		if err != nil {
			return err
		}
		harness.PrintTable2(os.Stdout, t2)
		fmt.Println()
		rows10, err := harness.RunFig10a(scale.YCSBRecords, scale.YCSBOps, scale.CachePcts)
		if err != nil {
			return err
		}
		harness.PrintFig10a(os.Stdout, rows10)
		fmt.Println()
		harness.PrintFig10b(os.Stdout, rows10)
		fmt.Println()
		r10c, err := harness.RunFig10c(scale.YCSBRecords, scale.YCSBOps)
		if err != nil {
			return err
		}
		harness.PrintFig10c(os.Stdout, r10c)
		fmt.Println()
		if err := harness.PrintGCAblation(os.Stdout, 900, 1); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
