// Command tracegen generates and inspects TPC-C page-write traces — the
// §IX-A3 experiment artifact replayed by Fig. 9 and Table II.
//
// Usage:
//
//	tracegen gen -out trace.bin [-txns N] [-warehouses N]
//	tracegen info trace.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"eleos/internal/tpcc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = gen(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: tracegen gen -out FILE [-txns N] [-warehouses N] | tracegen info FILE\n")
}

func gen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "trace.bin", "output file")
	txns := fs.Int("txns", 5000, "transactions to run")
	warehouses := fs.Int("warehouses", 2, "TPC-C warehouses")
	seed := fs.Int64("seed", 1, "rng seed")
	_ = fs.Parse(args)

	cfg := tpcc.DefaultConfig()
	cfg.Warehouses = *warehouses
	cfg.Seed = *seed
	fmt.Printf("running %d TPC-C transactions over %d warehouses...\n", *txns, *warehouses)
	tr, err := tpcc.Collect(tpcc.CollectOptions{Config: cfg, Transactions: *txns})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := tr.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d page writes, avg %.0f bytes\n", *out, len(tr.Writes), tr.AvgSize())
	return nil
}

func info(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info needs a trace file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := tpcc.DecodeTrace(f)
	if err != nil {
		return err
	}
	sizes := make([]int, len(tr.Writes))
	pids := map[uint64]int{}
	for i, w := range tr.Writes {
		sizes[i] = w.Size
		pids[w.PID]++
	}
	sort.Ints(sizes)
	pct := func(p int) int {
		if len(sizes) == 0 {
			return 0
		}
		return sizes[len(sizes)*p/100]
	}
	fmt.Printf("page size:        %d bytes (uncompressed)\n", tr.PageBytes)
	fmt.Printf("page writes:      %d (%d distinct pages)\n", len(tr.Writes), len(pids))
	fmt.Printf("total:            %.2f MB compressed\n", float64(tr.TotalBytes())/(1<<20))
	fmt.Printf("avg size:         %.0f bytes (paper: 1.91 KB)\n", tr.AvgSize())
	fmt.Printf("size percentiles: p10=%d p50=%d p90=%d p99=%d max=%d\n",
		pct(10), pct(50), pct(90), pct(99), sizes[len(sizes)-1])
	return nil
}
