// Package eleos is a from-scratch reproduction of "Programming an SSD
// Controller to Support Batched Writes for Variable-Size Pages" (Do, Luo,
// Lomet — ICDE 2021).
//
// The ELEOS controller itself lives in internal/core, over the flash media
// simulator in internal/flash; the baselines (a conventional block FTL and
// a host-based log-structured store), the applications (Bw-tree key-value
// store, compressed B+-tree with a TPC-C workload), and the experiment
// harness live in the other internal packages. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation; see DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-versus-measured results.
package eleos
