// Quickstart: format a simulated Open-Channel SSD with the ELEOS FTL,
// write a batch of variable-size pages with one I/O, read them back, and
// survive a crash.
package main

import (
	"fmt"
	"log"
	"strings"

	"eleos/internal/addr"
	"eleos/internal/core"
	"eleos/internal/flash"
)

func main() {
	// A simulated device: 4 channels x 32 EBLOCKs of 1 MB.
	dev, err := flash.NewDevice(flash.Geometry{
		Channels: 4, EBlocksPerChannel: 32,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}, flash.TypicalNANDLatency())
	if err != nil {
		log.Fatal(err)
	}

	// Format installs the ELEOS FTL: checkpoint area, recovery log, tables.
	ctl, err := core.Format(dev, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// One batched write of three pages with *different sizes* — a single
	// I/O command, atomic as a unit (the paper's flush_batch).
	err = ctl.WriteBatch(0, 0, []core.LPage{
		{LPID: 1, Data: []byte("a tiny 64-byte page")},
		{LPID: 2, Data: []byte(strings.Repeat("compressed B-tree page ", 80))}, // ~1.8 KB
		{LPID: 3, Data: make([]byte, 4096)},                                    // a classic 4 KB page
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reads address pages by LPID (the paper's read_lpid); the controller
	// returns exactly the stored extent, 64-byte aligned.
	for _, lpid := range []addr.LPID{1, 2, 3} {
		data, err := ctl.Read(lpid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("LPID %d: %4d bytes stored\n", lpid, len(data))
	}

	// Crash the controller and recover from flash alone.
	ctl.Crash()
	ctl2, err := core.Open(dev, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	data, err := ctl2.Read(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash+recovery, LPID 2 still holds %d bytes: %q...\n",
		len(data), string(data[:23]))

	s := ctl2.Stats()
	fmt.Printf("recovered controller: %d reads, media time so far %v\n",
		s.Reads, dev.MediaTime())
}
