// The netclient example shows the network face of ELEOS: an eleosd
// server on loopback and the retrying client library talking to it.
// It demonstrates the parts an in-process example can't — reconnect,
// session-ordered flushes over a socket, WSN-deduplicated retries, and a
// graceful drain — in a single self-contained process.
//
//	go run ./examples/netclient
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An eleosd in miniature: fresh in-memory device, served on loopback.
	dev := flash.MustNewDevice(flash.Geometry{
		Channels: 4, EBlocksPerChannel: 64,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}, flash.Latency{})
	ctl, err := core.Format(dev, core.DefaultConfig())
	if err != nil {
		return err
	}
	srv := server.New(ctl, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("eleosd serving on %s\n\n", ln.Addr())

	// Dial with the retrying client and open a durable session.
	cl, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		return err
	}
	sess, err := cl.NewSession()
	if err != nil {
		return err
	}
	fmt.Printf("session %d opened (WSNs start at 1)\n", sess.SID())

	// Three batches of variable-size pages, each one flush_batch command
	// over TCP, applied atomically and in WSN order.
	for b := 0; b < 3; b++ {
		pages := []core.LPage{
			{LPID: addr.LPID(100 + b*3), Data: []byte(fmt.Sprintf("batch %d: a tiny record", b))},
			{LPID: addr.LPID(101 + b*3), Data: []byte(strings.Repeat("compressed-page ", 120))}, // ~1.9 KB
			{LPID: addr.LPID(102 + b*3), Data: make([]byte, 4096)},                              // classic 4K page
		}
		if err := sess.Flush(pages); err != nil {
			return err
		}
		fmt.Printf("flushed batch %d (wsn %d, %d pages)\n", b, sess.NextWSN()-1, len(pages))
	}

	// Retrying an already-acknowledged WSN is safe: the server answers
	// from the session table without re-applying (the §III-A2 dedup the
	// client's automatic retries rely on after a dropped connection).
	high, err := cl.Flush(sess.SID(), 2, []core.LPage{{LPID: 999, Data: []byte("replayed — must not apply")}})
	if err != nil {
		return err
	}
	fmt.Printf("re-sent wsn 2: re-ACKed highest=%d, not re-applied\n", high)
	if _, err := cl.Read(999); err == nil {
		return fmt.Errorf("stale batch was applied")
	}

	// Read back over the wire (stored images are 64-byte aligned).
	data, err := cl.Read(100)
	if err != nil {
		return err
	}
	fmt.Printf("read lpid 100: %q\n", strings.TrimRight(string(data), "\x00"))

	st, err := cl.ControllerStats()
	if err != nil {
		return err
	}
	fmt.Printf("controller: %d batches, %d pages, %d stale re-ACKs\n",
		st.BatchesWritten, st.PagesWritten, st.StaleWrites)

	// Graceful drain: in-flight work finishes, then a checkpoint lands so
	// the next open replays (almost) nothing.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return err
	}
	fmt.Println("server drained: checkpointed and stopped")

	// Prove it: recover a controller from the same flash.
	ctl.Crash()
	ctl2, err := core.Open(dev, core.DefaultConfig())
	if err != nil {
		return err
	}
	again, err := ctl2.Read(100)
	if err != nil {
		return err
	}
	fmt.Printf("after crash+recover, lpid 100 still reads: %q\n", strings.TrimRight(string(again), "\x00"))
	return nil
}
