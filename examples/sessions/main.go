// sessions demonstrates §III-A2: ordered write buffers without waiting for
// ACKs. Multiple producers hand buffers to a pool of sender goroutines
// that deliver them to the SSD out of order; the controller applies and
// acknowledges them strictly in WSN order, so the application sees the
// same final state as if it had serialised everything — while keeping the
// parallelism the paper refuses to give up ("waiting for an ACK wastes
// parallelism").
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"eleos/internal/addr"
	"eleos/internal/core"
	"eleos/internal/flash"
)

func main() {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	ctl, err := core.Format(dev, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sid, err := ctl.OpenSession()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %x opened\n", sid)

	// 20 write buffers, each rewriting page 1 with its WSN; delivered by 4
	// concurrent senders. Buffers are shuffled within windows of 4 — the
	// host may reorder up to its in-flight depth, but a WSN can only be
	// applied once its predecessors arrived, so the reordering window must
	// not exceed the number of senders.
	const buffers = 20
	const senders = 4
	rng := rand.New(rand.NewSource(7))
	var order []int
	for base := 0; base < buffers; base += senders {
		blk := rng.Perm(senders)
		for _, off := range blk {
			order = append(order, base+off)
		}
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				wsn := uint64(idx + 1)
				payload := []byte(fmt.Sprintf("state after WSN %02d", wsn))
				if err := ctl.WriteBatch(sid, wsn, []core.LPage{
					{LPID: 1, Data: payload},
					{LPID: addr.LPID(100 + wsn), Data: payload},
				}); err != nil {
					log.Fatalf("wsn %d: %v", wsn, err)
				}
			}
		}()
	}
	for _, idx := range order {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	data, err := ctl.Read(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buffers arrived shuffled %v...\n", order[:8])
	fmt.Printf("page 1 after all ACKs: %q (the highest WSN, as §III-A2 requires)\n", trim(data))
	high, _ := ctl.SessionHighestWSN(sid)
	fmt.Printf("session highest WSN: %d of %d\n", high, buffers)

	// A duplicate redo of an old WSN is acknowledged but changes nothing.
	if err := ctl.WriteBatch(sid, 5, []core.LPage{{LPID: 1, Data: []byte("rogue redo")}}); err != nil {
		log.Fatal(err)
	}
	data, _ = ctl.Read(1)
	fmt.Printf("after redoing WSN 5: page 1 is still %q\n", trim(data))
}

func trim(b []byte) string {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}
