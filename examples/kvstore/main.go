// kvstore runs the paper's Bw-tree key-value store over the three storage
// interfaces — Block (host log structuring over a conventional SSD),
// Batch(FP) (batched fixed pages), and Batch(VP) (ELEOS) — on a small
// YCSB-style workload and prints the §IX-C comparison: throughput, data
// written, and where the bottleneck sits.
package main

import (
	"fmt"
	"log"

	"eleos/internal/flash"
	"eleos/internal/harness"
	"eleos/internal/nvme"
)

func main() {
	const (
		records  = 30_000
		ops      = 30_000
		cachePct = 25
	)
	fmt.Printf("Bw-tree, %d records x 100 B, %d ops (95%% updates / 5%% reads), %d%% cache\n\n",
		records, ops, cachePct)
	fmt.Printf("%-10s %12s %14s %14s %16s\n", "interface", "ops/sec", "SSD writes", "cache misses", "bottleneck")
	for _, iface := range harness.Interfaces {
		res, err := harness.RunYCSB(harness.YCSBOptions{
			Interface: iface,
			Records:   records,
			Ops:       ops,
			CachePct:  cachePct,
			Profile:   nvme.STT100(),
			Latency:   flash.TypicalNANDLatency(),
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.0f %11.1f MB %14d %16s\n",
			iface, res.OpsPerSec, float64(res.BytesWritten)/(1<<20), res.CacheMisses, res.Bottleneck)
	}
	fmt.Println("\nthe batch interface amortises the per-I/O execution cost over the whole")
	fmt.Println("1 MB write buffer (one write context instead of one per block), and the")
	fmt.Println("variable-size pages avoid writing the padding of fixed 4 KB pages.")
}
