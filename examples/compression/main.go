// compression demonstrates §I-B's motivation: a B+-tree storage engine
// whose 4 KB pages are compressed before being written becomes a producer
// of variable-size pages, and only a variable-size-page interface can bank
// the savings. The example runs a TPC-C-style workload through the
// compressed B+-tree, collects the page-write trace, and compares the
// bytes each interface must physically write.
package main

import (
	"fmt"
	"log"

	"eleos/internal/addr"
	"eleos/internal/tpcc"
)

func main() {
	cfg := tpcc.DefaultConfig()
	cfg.Warehouses = 1
	fmt.Println("running TPC-C on a B+-tree with DEFLATE page compression...")
	tr, err := tpcc.Collect(tpcc.CollectOptions{Config: cfg, Transactions: 1500})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d page writes captured; 4 KB pages compress to %.0f bytes on average (paper: 1.91 KB)\n",
		len(tr.Writes), tr.AvgSize())

	// What each interface must physically write for this trace:
	var blockBytes, fpBytes, vpBytes int64
	for _, w := range tr.Writes {
		blockBytes += int64(tr.PageBytes) // one 4 KB block per page
		fpBytes += int64(tr.PageBytes)    // batched, but padded to 4 KB
		vpBytes += int64(addr.AlignUp(w.Size))
	}
	fmt.Printf("\nbytes written to flash for the same logical work:\n")
	fmt.Printf("  Block      %8.1f MB (one 4 KB block write per page)\n", mb(blockBytes))
	fmt.Printf("  Batch(FP)  %8.1f MB (batched, fixed 4 KB pages)\n", mb(fpBytes))
	fmt.Printf("  Batch(VP)  %8.1f MB (batched, exact 64 B-aligned sizes)\n", mb(vpBytes))
	fmt.Printf("\nvariable-size pages write %.1f%% less than fixed-size pages —\n",
		100*(1-float64(vpBytes)/float64(fpBytes)))
	fmt.Println("the internal fragmentation the paper eliminates (Fig. 9, Table II, Fig. 10(b)).")
}

func mb(n int64) float64 { return float64(n) / (1 << 20) }
