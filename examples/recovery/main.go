// recovery demonstrates the §VIII durability machinery: write-buffer
// atomicity across crashes, session WSN ordering surviving recovery, and
// the host-side redo protocol for unacknowledged writes.
package main

import (
	"errors"
	"fmt"
	"log"

	"eleos/internal/core"
	"eleos/internal/flash"
)

func main() {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	ctl, err := core.Format(dev, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Atomicity: a crash mid-buffer leaves no trace -------------------
	must(ctl.WriteBatch(0, 0, []core.LPage{{LPID: 1, Data: []byte("v1 of page 1")}}))
	ctl.SetCrashPoint("commit.before-force") // die before the commit record is durable
	err = ctl.WriteBatch(0, 0, []core.LPage{
		{LPID: 1, Data: []byte("v2 of page 1")},
		{LPID: 2, Data: []byte("new page 2")},
	})
	fmt.Printf("crash injected mid-commit: %v\n", err)

	ctl, err = core.Open(dev, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	data, _ := ctl.Read(1)
	fmt.Printf("after recovery, LPID 1 = %q (the old version — all-or-nothing held)\n", trim(data))
	if _, err := ctl.Read(2); errors.Is(err, core.ErrNotFound) {
		fmt.Println("after recovery, LPID 2 does not exist (the torn buffer left no trace)")
	}

	// --- 2. Sessions: WSN ordering and idempotent redo ----------------------
	sid, err := ctl.OpenSession()
	if err != nil {
		log.Fatal(err)
	}
	must(ctl.WriteBatch(sid, 1, []core.LPage{{LPID: 10, Data: []byte("wsn-1")}}))
	must(ctl.WriteBatch(sid, 2, []core.LPage{{LPID: 10, Data: []byte("wsn-2")}}))
	fmt.Printf("\nsession %x applied WSNs 1 and 2\n", sid)

	ctl.Crash()
	ctl, err = core.Open(dev, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// The host never saw the ACK for WSN 2, so it redoes it. The recovered
	// session table recognises the stale WSN and acknowledges without
	// re-applying (§III-A2).
	must(ctl.WriteBatch(sid, 2, []core.LPage{{LPID: 10, Data: []byte("wsn-2 REDO")}}))
	data, _ = ctl.Read(10)
	fmt.Printf("after crash + host redo of WSN 2, LPID 10 = %q (not re-applied)\n", trim(data))
	high, _ := ctl.SessionHighestWSN(sid)
	fmt.Printf("session survives recovery with highest WSN = %d; WSN 3 continues the order\n", high)
	must(ctl.WriteBatch(sid, 3, []core.LPage{{LPID: 10, Data: []byte("wsn-3")}}))

	// --- 3. Committed data survives any number of crashes -------------------
	for i := 0; i < 3; i++ {
		ctl.Crash()
		ctl, err = core.Open(dev, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
	}
	data, _ = ctl.Read(10)
	fmt.Printf("\nafter three more crash/recover cycles, LPID 10 = %q\n", trim(data))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func trim(b []byte) string {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}
